package snapshot_test

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/snapshot"
	"complexobj/internal/store"
)

// TestExtractSegment pins the shard-split property: a segment extracted
// from a snapshot serves its models with counters bit-identical to the
// full snapshot — the arena and meta bytes are copied verbatim, so a
// shard handoff by segment file is equivalent to serving the original.
func TestExtractSegment(t *testing.T) {
	gen := testGen()
	stations, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	kinds := store.AllKinds()
	models := make([]store.Model, 0, len(kinds))
	for _, k := range kinds {
		models = append(models, loadModel(t, k, stations, disk.BackendSpec{}))
	}
	dir := t.TempDir()
	full := filepath.Join(dir, "full.codb")
	if err := snapshot.Write(full, gen, models...); err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if err := m.Engine().Close(); err != nil {
			t.Fatal(err)
		}
	}

	sel := []store.Kind{store.DSM, store.NSM, store.DASDBSNSM}
	seg := filepath.Join(dir, "full.s0.codb")
	if err := snapshot.Extract(full, seg, sel); err != nil {
		t.Fatal(err)
	}

	info, err := snapshot.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != gen {
		t.Errorf("segment gen %+v, want %+v", info.Gen, gen)
	}
	if !reflect.DeepEqual(info.Kinds, sel) {
		t.Errorf("segment kinds %v, want %v", info.Kinds, sel)
	}

	for _, k := range sel {
		fullBase, err := snapshot.OpenBase(full, k)
		if err != nil {
			t.Fatal(err)
		}
		segBase, err := snapshot.OpenBase(seg, k)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := fullBase.Open(store.Options{BufferPages: 180})
		if err != nil {
			t.Fatal(err)
		}
		sm, err := segBase.Open(store.Options{BufferPages: 180})
		if err != nil {
			t.Fatal(err)
		}
		want, got := runAll(t, fm), runAll(t, sm)
		for i := range want {
			if want[i].Stats != got[i].Stats {
				t.Errorf("%s %s: segment counters differ from full snapshot:\nfull:    %+v\nsegment: %+v",
					k, want[i].Query, want[i].Stats, got[i].Stats)
			}
		}
		fm.Engine().Close()
		sm.Engine().Close()
		fullBase.Release()
		segBase.Release()
	}

	// A model left out of the segment is gone; the full snapshot keeps it.
	if _, err := snapshot.OpenBase(seg, store.NSMIndex); !errors.Is(err, snapshot.ErrNoModel) {
		t.Errorf("extracted segment still holds NSM+index: %v", err)
	}
}

func TestExtractErrors(t *testing.T) {
	gen := testGen()
	stations, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := loadModel(t, store.DSM, stations, disk.BackendSpec{})
	dir := t.TempDir()
	full := filepath.Join(dir, "one.codb")
	if err := snapshot.Write(full, gen, m); err != nil {
		t.Fatal(err)
	}
	m.Engine().Close()

	dst := filepath.Join(dir, "out.codb")
	if err := snapshot.Extract(full, dst, nil); err == nil {
		t.Error("extract of no models accepted")
	}
	if err := snapshot.Extract(full, dst, []store.Kind{store.NSM}); !errors.Is(err, snapshot.ErrNoModel) {
		t.Errorf("extract of a missing model: %v", err)
	}
	if err := snapshot.Extract(full, dst, []store.Kind{store.DSM, store.DSM}); err == nil {
		t.Error("duplicate selection accepted")
	}
	if err := snapshot.Extract(filepath.Join(dir, "missing.codb"), dst, []store.Kind{store.DSM}); err == nil {
		t.Error("missing source accepted")
	}
}
