package router

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
	"complexobj/internal/server"
	"complexobj/internal/shard"
)

// buildSplit writes a small snapshot, splits it into n range shards and
// returns (snapshot path, map path, the loaded map).
func buildSplit(t *testing.T, stations int, n int) (string, string, *shard.Map) {
	t.Helper()
	gen := cobench.DefaultConfig().WithN(stations)
	objs, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	var dbs []*complexobj.DB
	for _, k := range complexobj.AllModels() {
		db, err := complexobj.Open(k, complexobj.Options{BufferPages: 256})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Load(objs); err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	path := filepath.Join(t.TempDir(), "route.codb")
	if err := complexobj.WriteSnapshot(path, gen, dbs...); err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs {
		db.Close()
	}

	info, err := complexobj.StatSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(info.Models))
	byName := make(map[string]complexobj.ModelKind)
	for i, k := range info.Models {
		names[i] = k.String()
		byName[k.String()] = k
	}
	m, err := shard.Partition(names, n, shard.StrategyRange)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Shards {
		s := &m.Shards[i]
		if len(s.Models) == 0 {
			continue
		}
		kinds := make([]complexobj.ModelKind, len(s.Models))
		for j, name := range s.Models {
			kinds[j] = byName[name]
		}
		seg := shard.SegmentName(path, s.ID)
		if err := complexobj.ExtractSnapshot(path, seg, kinds); err != nil {
			t.Fatal(err)
		}
		s.Segment = filepath.Base(seg)
	}
	mapPath := shard.MapName(path)
	if err := m.Write(mapPath); err != nil {
		t.Fatal(err)
	}
	return path, mapPath, m
}

// backendFixture is one live coserve-equivalent backend.
type backendFixture struct {
	srv *server.Server
	hs  *httptest.Server
}

func startBackend(t *testing.T, mapPath string, shards []int) *backendFixture {
	t.Helper()
	srv, err := server.New(server.Config{ShardMap: mapPath, Shards: shards, BufferPages: 256, MaxViews: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return &backendFixture{srv: srv, hs: hs}
}

func startRouter(t *testing.T, mapPath string, backends []string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(Config{MapPath: mapPath, Backends: backends, Retries: 4, RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { hs.Close(); rt.Close() })
	return rt, hs
}

func runURL(base, model, query string, w cobench.Workload) string {
	p := url.Values{}
	p.Set("model", model)
	p.Set("query", query)
	p.Set("loops", strconv.Itoa(w.Loops))
	p.Set("samples", strconv.Itoa(w.Samples))
	p.Set("seed", strconv.FormatUint(w.Seed, 10))
	return base + "/run?" + p.Encode()
}

func getJSONT(t *testing.T, hc *http.Client, url string, v any) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// driveAll issues `rounds` requests for every (model, query) cell through
// hc against base, with `clients` concurrent workers, failing on any
// non-200.
func driveAll(t *testing.T, hc *http.Client, base string, w cobench.Workload, rounds, clients int) {
	t.Helper()
	models := complexobj.AllModels()
	queries := cobench.AllQueries()
	type job struct{ m, q string }
	var jobs []job
	for r := 0; r < rounds; r++ {
		for _, k := range models {
			for _, q := range queries {
				jobs = append(jobs, job{k.String(), q.String()})
			}
		}
	}
	err := fanout.Run(len(jobs), clients, func(i int) error {
		resp, err := hc.Get(runURL(base, jobs[i].m, jobs[i].q, w))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: %s", jobs[i].m, jobs[i].q, resp.Status)
		}
		var rr server.RunResponse
		return json.NewDecoder(resp.Body).Decode(&rr)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// stripTiming zeroes the wall-clock fields of a stats payload so two
// deployments can be compared bit-for-bit on counters alone.
func stripTiming(sr *server.StatsResponse) {
	sr.UptimeSeconds = 0
	for i := range sr.Cells {
		sr.Cells[i].MeanUS = 0
		sr.Cells[i].MaxUS = 0
	}
}

// TestScatterGatherMatchesSingleNode is the tentpole acceptance test at
// test scale: the same workload driven through a 2-backend sharded
// deployment and through one unsharded node must produce bit-identical
// aggregate /stats counter cells (timing stripped) — sharding lives
// outside the counted I/O.
func TestScatterGatherMatchesSingleNode(t *testing.T) {
	path, mapPath, _ := buildSplit(t, 60, 2)
	w := cobench.Workload{Loops: 10, Samples: 4, Seed: 1993}

	b0 := startBackend(t, mapPath, []int{0})
	b1 := startBackend(t, mapPath, []int{1})
	_, rhs := startRouter(t, mapPath, []string{b0.hs.URL, b1.hs.URL})

	single, err := server.New(server.Config{Snapshot: path, BufferPages: 256, MaxViews: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	shs := httptest.NewServer(single.Handler())
	defer shs.Close()

	hc := &http.Client{Timeout: 60 * time.Second}
	const rounds, clients = 3, 8
	driveAll(t, hc, rhs.URL, w, rounds, clients)
	driveAll(t, hc, shs.URL, w, rounds, clients)

	var routed, alone server.StatsResponse
	getJSONT(t, hc, rhs.URL+"/stats", &routed)
	getJSONT(t, hc, shs.URL+"/stats", &alone)
	stripTiming(&routed)
	stripTiming(&alone)
	if routed.Requests != alone.Requests {
		t.Errorf("routed %d requests, single node %d", routed.Requests, alone.Requests)
	}
	if !reflect.DeepEqual(routed.Cells, alone.Cells) {
		t.Errorf("aggregate cells diverge:\nrouted: %+v\nsingle: %+v", routed.Cells, alone.Cells)
	}
	for _, c := range routed.Cells {
		if c.Divergent {
			t.Errorf("%s %s: routed cell flagged divergent", c.Model, c.Query)
		}
	}

	// /info re-speaks the single-node shape: same identity, all models.
	var rinfo, sinfo server.InfoResponse
	getJSONT(t, hc, rhs.URL+"/info", &rinfo)
	getJSONT(t, hc, shs.URL+"/info", &sinfo)
	if rinfo.Gen != sinfo.Gen || rinfo.PageSize != sinfo.PageSize || rinfo.BufferPages != sinfo.BufferPages {
		t.Errorf("router identity (gen %+v, page %d, buffer %d) != single node (%+v, %d, %d)",
			rinfo.Gen, rinfo.PageSize, rinfo.BufferPages, sinfo.Gen, sinfo.PageSize, sinfo.BufferPages)
	}
	if len(rinfo.Models) != len(complexobj.AllModels()) {
		t.Errorf("router /info lists %d models, want %d", len(rinfo.Models), len(complexobj.AllModels()))
	}
	if rinfo.Sharding == nil || len(rinfo.Sharding.Shards) != 2 {
		t.Errorf("router /info sharding block %+v, want 2 shards", rinfo.Sharding)
	}

	var health RouterHealth
	getJSONT(t, hc, rhs.URL+"/healthz", &health)
	if health.Status != "ok" || len(health.Backends) != 2 {
		t.Errorf("router health %+v, want ok over 2 backends", health)
	}

	// Connection pooling: far fewer dials than requests.
	dials := scrapeMetric(t, hc, rhs.URL, "coshard_dials_total")
	requests := scrapeMetric(t, hc, rhs.URL, "coshard_requests_total")
	if requests < float64(rounds*len(complexobj.AllModels())*len(cobench.AllQueries())) {
		t.Errorf("router counted %v requests, want >= %d", requests, rounds*35)
	}
	if dials > requests/2 {
		t.Errorf("%v dials for %v requests — keep-alive pooling is not reusing connections", dials, requests)
	}
}

// scrapeMetric reads one unlabeled sample from a /metrics endpoint.
func scrapeMetric(t *testing.T, hc *http.Client, base, name string) float64 {
	t.Helper()
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatalf("no %s in /metrics", name)
	return 0
}

// TestRebalanceLosesNoRequests moves shard 0 between two live backends in
// the middle of a concurrent load and proves the handoff protocol
// (acquire → assign → release) loses nothing: every request succeeds at
// the router surface, and the final aggregate counts every run exactly
// once with no divergence.
func TestRebalanceLosesNoRequests(t *testing.T) {
	_, mapPath, m := buildSplit(t, 60, 2)
	w := cobench.Workload{Loops: 8, Samples: 3, Seed: 1993}

	a := startBackend(t, mapPath, []int{0})
	b := startBackend(t, mapPath, []int{1})
	_, rhs := startRouter(t, mapPath, []string{a.hs.URL, b.hs.URL})
	hc := &http.Client{Timeout: 60 * time.Second}

	models := complexobj.AllModels()
	queries := cobench.AllQueries()
	const perCell = 6 // requests per (model, query) cell
	type job struct{ m, q string }
	var jobs []job
	for r := 0; r < perCell; r++ {
		for _, k := range models {
			for _, q := range queries {
				jobs = append(jobs, job{k.String(), q.String()})
			}
		}
	}

	// The handoff runs while the load is in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	handoffErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		// 1. New owner opens the segment and starts serving shard 0 too.
		if _, err := b.srv.AcquireShard(0, ""); err != nil {
			handoffErr <- fmt.Errorf("acquire: %w", err)
			return
		}
		// 2. Router repoints shard 0 at the new owner.
		resp, err := hc.Post(rhs.URL+"/map/assign?shard=0&backend="+url.QueryEscape(b.hs.URL), "", nil)
		if err != nil {
			handoffErr <- fmt.Errorf("assign: %w", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			handoffErr <- fmt.Errorf("assign: %s", resp.Status)
			return
		}
		// 3. Old owner drops the shard; stragglers routed under the old
		// binding get 421 and retry against the new one.
		if _, err := a.srv.ReleaseShard(0); err != nil {
			handoffErr <- fmt.Errorf("release: %w", err)
			return
		}
		handoffErr <- nil
	}()

	err := fanout.Run(len(jobs), 8, func(i int) error {
		resp, err := hc.Get(runURL(rhs.URL, jobs[i].m, jobs[i].q, w))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: %s mid-rebalance", jobs[i].m, jobs[i].q, resp.Status)
		}
		var rr server.RunResponse
		return json.NewDecoder(resp.Body).Decode(&rr)
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if herr := <-handoffErr; herr != nil {
		t.Fatal(herr)
	}

	// Every cell holds exactly perCell runs: none lost, none duplicated,
	// none divergent — even for the models that changed owner mid-load.
	var stats server.StatsResponse
	getJSONT(t, hc, rhs.URL+"/stats", &stats)
	if want := int64(len(jobs)); stats.Requests != want {
		t.Errorf("aggregate reports %d requests, want %d", stats.Requests, want)
	}
	if want := len(models) * len(queries); len(stats.Cells) != want {
		t.Fatalf("aggregate has %d cells, want %d", len(stats.Cells), want)
	}
	for _, c := range stats.Cells {
		if c.Count != perCell {
			t.Errorf("%s %s: count %d, want %d (requests lost or duplicated in the handoff)",
				c.Model, c.Query, c.Count, perCell)
		}
		if c.Divergent {
			t.Errorf("%s %s: divergent across the handoff — segment serving is not bit-identical", c.Model, c.Query)
		}
	}

	// The moved shard's models now live on backend B alone.
	sh0, _ := m.Shard(0)
	var ainfo, binfo server.InfoResponse
	getJSONT(t, hc, a.hs.URL+"/info", &ainfo)
	getJSONT(t, hc, b.hs.URL+"/info", &binfo)
	if len(ainfo.Sharding.Shards) != 0 {
		t.Errorf("old owner still owns %v after release", ainfo.Sharding.Shards)
	}
	if len(binfo.Sharding.Shards) != 2 {
		t.Errorf("new owner owns %v, want both shards", binfo.Sharding.Shards)
	}
	if len(binfo.Models) != len(models) {
		t.Errorf("new owner serves %d models, want all %d (shard 0 brings %v)",
			len(binfo.Models), len(models), sh0.Models)
	}
}

// TestDegradedShardOnly kills one backend and checks partial failure
// stays partial: the dead shard's models fail with a structured 503
// naming the shard, every other model keeps serving, and /healthz turns
// degraded without going down.
func TestDegradedShardOnly(t *testing.T) {
	_, mapPath, m := buildSplit(t, 40, 2)
	w := cobench.Workload{Loops: 5, Samples: 2, Seed: 7}

	b0 := startBackend(t, mapPath, []int{0})
	b1 := startBackend(t, mapPath, []int{1})
	rt, err := New(Config{MapPath: mapPath, Backends: []string{b0.hs.URL, b1.hs.URL},
		Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rhs := httptest.NewServer(rt.Handler())
	defer rhs.Close()
	hc := &http.Client{Timeout: 30 * time.Second}

	b1.hs.Close() // shard 1's backend dies

	sh0, _ := m.Shard(0)
	sh1, _ := m.Shard(1)
	for _, name := range sh0.Models {
		var rr server.RunResponse
		getJSONT(t, hc, runURL(rhs.URL, name, "1a", w), &rr)
	}
	for _, name := range sh1.Models {
		resp, err := hc.Get(runURL(rhs.URL, name, "1a", w))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			resp.Body.Close()
			t.Fatalf("dead shard model %s: %s, want 503", name, resp.Status)
		}
		var deg DegradedResponse
		if err := json.NewDecoder(resp.Body).Decode(&deg); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if deg.Shard != 1 || deg.Model != name || deg.Attempts != 2 {
			t.Errorf("degraded payload %+v, want shard 1 / model %s / 2 attempts", deg, name)
		}
	}

	var health RouterHealth
	getJSONT(t, hc, rhs.URL+"/healthz", &health)
	if health.Status != "degraded" {
		t.Errorf("router health %q with a dead backend, want degraded", health.Status)
	}
	unreachable := 0
	for _, row := range health.Backends {
		if row.Status == "unreachable" {
			unreachable++
		}
	}
	if unreachable != 1 {
		t.Errorf("%d unreachable backends, want 1", unreachable)
	}
}

// TestAssignValidation pins the /map/assign surface.
func TestAssignValidation(t *testing.T) {
	_, mapPath, _ := buildSplit(t, 40, 2)
	b0 := startBackend(t, mapPath, nil) // owns everything
	_, rhs := startRouter(t, mapPath, []string{b0.hs.URL, b0.hs.URL})
	hc := &http.Client{Timeout: 10 * time.Second}

	get, err := hc.Get(rhs.URL + "/map/assign?shard=0&backend=http://x")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET assign: %s, want 405", get.Status)
	}
	for path, want := range map[string]int{
		"/map/assign?shard=zz&backend=http://x": http.StatusBadRequest,
		"/map/assign?shard=0":                   http.StatusBadRequest,
		"/map/assign?shard=9&backend=http://x":  http.StatusConflict,
	} {
		resp, err := hc.Post(rhs.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("POST %s: %s, want %d", path, resp.Status, want)
		}
	}
}
