// Package router is the scale-out front of the serving path: a shard
// router that fans benchmark requests out over the coserve backends that
// own them (internal/shard maps model → shard → backend) and aggregates
// the deployment's measurements back into the single-node wire format.
//
// The router lives entirely outside the paper's counted I/O: it owns no
// engine, no buffer pool and no device — it only forwards HTTP requests
// and merges JSON payloads. A /run forwarded through the router returns
// the owning backend's response byte-for-byte, and the scatter-gathered
// /stats is the cell-wise union of the backends' aggregates: with
// model-granular shards no query crosses backends, so the aggregate
// counter cells are bit-identical to a single node serving the whole
// snapshot (TestScatterGatherMatchesSingleNode pins this).
//
// Mechanics worth naming:
//
//   - Connection pooling: one shared keep-alive transport over every
//     backend, with a dial counter surfaced on /metrics — in steady state
//     dials stay near the pool size while requests grow without bound.
//   - Bounded retry, no hedging: a transient transport error, a 503 or a
//     421 Misdirected Request re-resolves the owner and retries with
//     backoff a bounded number of times; the router never races duplicate
//     requests against two backends (a duplicated /run would double-count
//     a cell in the backend's /stats aggregate).
//   - Rebalance: POST /map/assign repoints a shard to a new backend at a
//     bumped map version; in-flight requests that lose the race get a 421
//     or a closing-pool 503 from the old owner and retry against the new
//     binding, so a handoff between two live backends loses no requests
//     (TestRebalanceLosesNoRequests).
//   - Degradation: when a shard's backend stays unreachable past the
//     retry budget, only that shard's models fail — with a structured 503
//     naming the shard — while every other shard keeps serving.
package router
