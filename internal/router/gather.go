package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"complexobj/internal/fanout"
	"complexobj/internal/metrics"
	"complexobj/internal/server"
	"complexobj/internal/shard"
)

// The scatter-gather endpoints re-speak the single-node wire format over
// N backends: cobench pointed at the router sees the same /stats and
// /info schemas a lone coserve answers with. Fan-out is bounded
// (cfg.Fanout concurrent backends) and reuses the pooled transport.

// getJSON fetches one backend endpoint into v.
func (rt *Router) getJSON(ctx context.Context, url string, v any) error {
	resp, err := rt.proxyGet(ctx, url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", drainError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// gather fans one endpoint out over every distinct backend with bounded
// concurrency, decoding each response into out[i] (allocated by mk).
func gatherJSON[T any](rt *Router, ctx context.Context, path string) ([]string, []T, error) {
	backends := rt.knownSet()
	if len(backends) == 0 {
		return nil, nil, errNoBackends
	}
	out := make([]T, len(backends))
	err := fanout.Run(len(backends), rt.cfg.Fanout, func(i int) error {
		if err := rt.getJSON(ctx, backends[i]+path, &out[i]); err != nil {
			return errBackend(backends[i], err)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return backends, out, nil
}

// addCounters sums raw counters cell-wise (server.Counters has only
// exported int64 fields; the server's own adder is unexported).
func addCounters(a, b server.Counters) server.Counters {
	a.PagesRead += b.PagesRead
	a.PagesWritten += b.PagesWritten
	a.ReadCalls += b.ReadCalls
	a.WriteCalls += b.WriteCalls
	a.BufferFixes += b.BufferFixes
	a.BufferHits += b.BufferHits
	return a
}

// handleStats scatter-gathers /stats across the backends and merges the
// aggregates into one StatsResponse. With model-granular shards a cell
// normally lives on exactly one backend, so the merge is a union; after
// a handoff the same cell can carry runs from two owners, and then counts
// and sums add while the per-run Raw/PerUnit values must agree — any
// disagreement marks the cell divergent, exactly as a single node would
// flag a run that broke determinism.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	_, stats, err := gatherJSON[server.StatsResponse](rt, r.Context(), "/stats")
	if err != nil {
		httpError(w, http.StatusBadGateway, "gather /stats: %v", err)
		return
	}
	merged := server.StatsResponse{}
	cells := make(map[server.AggKey]*server.AggCell)
	var order []server.AggKey
	for _, sr := range stats {
		merged.Requests += sr.Requests
		merged.DroppedCells += sr.DroppedCells
		if sr.UptimeSeconds > merged.UptimeSeconds {
			merged.UptimeSeconds = sr.UptimeSeconds
		}
		for i := range sr.Cells {
			c := sr.Cells[i]
			have, ok := cells[c.AggKey]
			if !ok {
				cp := c
				cells[c.AggKey] = &cp
				order = append(order, c.AggKey)
				continue
			}
			// Two backends measured the same cell (a handoff window or a
			// co-owned shard): identical per-run values merge losslessly.
			if have.Raw != c.Raw || have.PerUnit != c.PerUnit || have.Supported != c.Supported {
				have.Divergent = true
			}
			have.Divergent = have.Divergent || c.Divergent
			total := have.Count + c.Count
			have.MeanUS = (have.MeanUS*have.Count + c.MeanUS*c.Count) / total
			have.Count = total
			have.RawSum = addCounters(have.RawSum, c.RawSum)
			if c.MaxUS > have.MaxUS {
				have.MaxUS = c.MaxUS
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Workload.Loops != b.Workload.Loops {
			return a.Workload.Loops < b.Workload.Loops
		}
		if a.Workload.Samples != b.Workload.Samples {
			return a.Workload.Samples < b.Workload.Samples
		}
		return a.Workload.Seed < b.Workload.Seed
	})
	merged.Cells = make([]server.AggCell, 0, len(order))
	for _, key := range order {
		merged.Cells = append(merged.Cells, *cells[key])
	}
	writeJSON(w, merged)
}

// handleInfo merges the backends' /info into the single-node shape: the
// deployment identity (generator config, page size, buffer pages) comes
// from the first backend — every segment of one split carries the same
// header, and cobench's flag check needs exactly these fields — while the
// model list is the union across backends and the sharding block
// describes the router's current bindings.
func (rt *Router) handleInfo(w http.ResponseWriter, r *http.Request) {
	backends, infos, err := gatherJSON[server.InfoResponse](rt, r.Context(), "/info")
	if err != nil {
		httpError(w, http.StatusBadGateway, "gather /info: %v", err)
		return
	}
	merged := infos[0]
	merged.Snapshot = rt.cfg.MapPath
	merged.Models = nil
	seen := make(map[string]bool)
	for _, info := range infos {
		for _, pi := range info.Models {
			if !seen[pi.Model] {
				seen[pi.Model] = true
				merged.Models = append(merged.Models, pi)
			}
		}
	}
	sort.Slice(merged.Models, func(i, j int) bool { return merged.Models[i].Model < merged.Models[j].Model })
	// The router's own process stats replace the backend's: cobench -soak
	// samples /info for the RSS of whatever it drives.
	merged.Metrics = server.MetricsInfo{Process: metrics.ReadProcStats()}
	rt.mu.RLock()
	sharding := &server.ShardingInfo{MapPath: rt.cfg.MapPath, MapVersion: rt.version}
	rt.mu.RUnlock()
	for _, sh := range rt.bindings() {
		sharding.Shards = append(sharding.Shards, sh.ID)
		sharding.Models = append(sharding.Models, sh.Models...)
	}
	sort.Strings(sharding.Models)
	merged.Sharding = sharding
	_ = backends
	writeJSON(w, merged)
}

// BackendHealth is one backend's row in the router's /healthz.
type BackendHealth struct {
	Backend string `json:"backend"`
	Status  string `json:"status"` // the backend's own status, or "unreachable"
	Error   string `json:"error,omitempty"`
}

// RouterHealth is the router's /healthz payload: ok only when every
// backend answered its own /healthz with ok.
type RouterHealth struct {
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	backends := rt.boundSet()
	rows := make([]BackendHealth, len(backends))
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	fanout.Run(len(backends), rt.cfg.Fanout, func(i int) error {
		rows[i] = BackendHealth{Backend: backends[i]}
		var h server.HealthResponse
		if err := rt.getJSON(ctx, backends[i]+"/healthz", &h); err != nil {
			rows[i].Status = "unreachable"
			rows[i].Error = err.Error()
			return nil // health rows report errors, the probe itself never fails
		}
		rows[i].Status = h.Status
		return nil
	})
	out := RouterHealth{Status: "ok", Backends: rows}
	for _, row := range rows {
		if row.Status != "ok" {
			out.Status = "degraded"
		}
	}
	writeJSON(w, out)
}

// handleMetrics renders the router's own counters — shard-level routing,
// retries, connection reuse — in the same Prometheus text format the
// backends use. Backend metrics are not proxied: a scraper federates each
// process separately, and the coshard_ prefix keeps the two apart.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := metrics.NewPromWriter(w)
	p.Sample("coshard_uptime_seconds", "gauge", "", time.Since(rt.start).Seconds())
	p.Sample("coshard_requests_total", "counter", "", float64(rt.requests.Load()))
	p.Sample("coshard_misdirected_total", "counter", "", float64(rt.misdirected.Load()))
	p.Sample("coshard_failed_requests_total", "counter", "", float64(rt.failures.Load()))
	p.Sample("coshard_dials_total", "counter", "", float64(rt.dials.Load()))
	rt.mu.RLock()
	version := rt.version
	rt.mu.RUnlock()
	p.Sample("coshard_map_version", "gauge", "", float64(version))
	for _, sh := range rt.bindings() {
		rt.mu.RLock()
		st := rt.shards[sh.ID]
		rt.mu.RUnlock()
		labels := fmt.Sprintf("shard=\"%d\"", sh.ID)
		p.Sample("coshard_shard_requests_total", "counter", labels, float64(st.requests.Load()))
		p.Sample("coshard_shard_retries_total", "counter", labels, float64(st.retries.Load()))
		p.Sample("coshard_shard_failures_total", "counter", labels, float64(st.failures.Load()))
		p.Sample("coshard_shard_assigned", "gauge",
			fmt.Sprintf("shard=\"%d\",backend=%q", sh.ID, sh.Backend), 1)
		p.Summary("coshard_shard_latency_seconds", labels, st.lat.Snapshot())
	}
}

// Map returns the router's current view of the shard map with live
// backend bindings (for coshard's startup banner).
func (rt *Router) Map() []shard.Shard { return rt.bindings() }

// Version returns the router's map-state version.
func (rt *Router) Version() uint64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.version
}
