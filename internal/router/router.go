package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"complexobj"
	"complexobj/internal/metrics"
	"complexobj/internal/shard"
)

// Config parameterizes a Router.
type Config struct {
	// MapPath is the shard-map file (cogen -split) naming the shards and
	// the models each owns.
	MapPath string
	// Backends are the backend base URLs ("http://host:port"), one per
	// shard in map order. Empty falls back to the map's per-shard Backend
	// fields; every shard must end up with a backend one way or the other.
	Backends []string
	// Retries bounds the attempts per routed request (default 3). Retries
	// re-resolve the owner first, so a rebalance mid-request converges.
	Retries int
	// RetryBackoff is the wait before the second attempt, doubling per
	// retry (default 25ms). The total retry window is what covers the
	// acquire→assign→release handoff gap.
	RetryBackoff time.Duration
	// Fanout bounds the concurrent backends a scatter-gather touches
	// (default 4).
	Fanout int
	// Timeout bounds one backend call (default 60s; scatter-gather
	// endpoints use a short fraction of it).
	Timeout time.Duration
	// MaxIdlePerHost sizes the keep-alive pool per backend (default 32).
	MaxIdlePerHost int
}

// shardState is the routing and accounting state of one shard. The
// backend binding is the only mutable field (guarded by Router.mu); the
// counters are atomics beside the request path.
type shardState struct {
	backend  string
	requests atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
	lat      *metrics.Histogram
}

// Router fans /run requests to the backend owning the model's shard and
// scatter-gathers the observability endpoints. See the package comment.
type Router struct {
	cfg    Config
	client *http.Client
	dials  atomic.Int64
	start  time.Time

	// mu guards the shard map and the shard→backend bindings; held for
	// lookups and /map/assign, never across a backend call.
	mu      sync.RWMutex
	smap    *shard.Map
	shards  map[int]*shardState
	version uint64 // bumps on every /map/assign (starts at the map's)
	// known lists every backend ever bound, in first-seen order. The
	// scatter-gather for /stats walks this set, not just the live
	// bindings: after a handoff the old owner still holds the aggregates
	// of the runs it served, and dropping them would under-count cells.
	known []string

	requests    atomic.Int64
	misdirected atomic.Int64
	failures    atomic.Int64
}

// New loads the shard map and binds every shard to its backend.
func New(cfg Config) (*Router, error) {
	m, err := shard.Load(cfg.MapPath)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	if len(cfg.Backends) != 0 && len(cfg.Backends) != len(m.Shards) {
		return nil, fmt.Errorf("router: %d backends for %d shards", len(cfg.Backends), len(m.Shards))
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.MaxIdlePerHost <= 0 {
		cfg.MaxIdlePerHost = 32
	}
	rt := &Router{
		cfg:     cfg,
		smap:    m,
		shards:  make(map[int]*shardState, len(m.Shards)),
		version: m.Version,
		start:   time.Now(),
	}
	for i := range m.Shards {
		sh := &m.Shards[i]
		backend := sh.Backend
		if len(cfg.Backends) != 0 {
			backend = cfg.Backends[i]
		}
		if backend == "" {
			return nil, fmt.Errorf("router: shard %d has no backend (map Backend field or -backends)", sh.ID)
		}
		rt.shards[sh.ID] = &shardState{backend: backend, lat: metrics.NewHistogram()}
		rt.rememberLocked(backend)
	}
	// One pooled keep-alive transport across every backend: scatter-gather
	// and routed runs reuse warm connections, and the dial counter on
	// /metrics is the proof (dials plateau, requests do not).
	dialer := &net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			rt.dials.Add(1)
			return dialer.DialContext(ctx, network, addr)
		},
		MaxIdleConns:        cfg.MaxIdlePerHost * (len(m.Shards) + 1),
		MaxIdleConnsPerHost: cfg.MaxIdlePerHost,
		IdleConnTimeout:     90 * time.Second,
	}
	rt.client = &http.Client{Transport: transport, Timeout: cfg.Timeout}
	return rt, nil
}

// Close releases the transport's idle connections.
func (rt *Router) Close() {
	rt.client.CloseIdleConnections()
}

// Handler returns the HTTP handler serving the router's endpoints: the
// single-node wire surface (/run, /stats, /info, /healthz, /metrics) plus
// the rebalance endpoint /map/assign.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", rt.handleRun)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.HandleFunc("/info", rt.handleInfo)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/map/assign", rt.handleAssign)
	return mux
}

// resolve maps a model name to its owning shard and current backend.
func (rt *Router) resolve(model string) (int, *shardState, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	id, ok := rt.smap.Owner(model)
	if !ok {
		return 0, nil, false
	}
	st, ok := rt.shards[id]
	return id, st, ok
}

// backendFor snapshots the shard's binding at attempt time.
func (st *shardState) backendFor(rt *Router) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return st.backend
}

// DegradedResponse is the structured 503 the router answers with when a
// shard's backend stays unreachable past the retry budget: it names the
// lost shard so a caller can tell "this shard is down" from "the
// deployment is down" (every other shard keeps serving).
type DegradedResponse struct {
	Error    string `json:"error"`
	Shard    int    `json:"shard"`
	Backend  string `json:"backend"`
	Model    string `json:"model"`
	Attempts int    `json:"attempts"`
}

// handleRun routes one benchmark run to the backend owning the model's
// shard and relays the response verbatim. Transient failures — transport
// errors, 503, 421 — retry with backoff after re-resolving the owner;
// everything else (including the backend's 400s and 500s) passes through
// untouched, so the router adds no semantics to the single-node surface.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	kind, err := complexobj.ModelByName(model)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canonical := kind.String()
	rt.requests.Add(1)

	var (
		lastErr  string
		lastID   int
		lastBack string
	)
	for attempt := 0; attempt < rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			backoff := rt.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-time.After(backoff):
			case <-r.Context().Done():
				httpError(w, http.StatusServiceUnavailable, "client gone: %v", r.Context().Err())
				return
			}
		}
		id, st, ok := rt.resolve(canonical)
		if !ok {
			httpError(w, http.StatusBadRequest, "model %s is in no shard of %s", canonical, rt.cfg.MapPath)
			return
		}
		backend := st.backendFor(rt)
		lastID, lastBack = id, backend
		if attempt > 0 {
			st.retries.Add(1)
		}

		begin := time.Now()
		resp, err := rt.proxyGet(r.Context(), backend+"/run?"+r.URL.Query().Encode())
		if err != nil {
			if r.Context().Err() != nil {
				httpError(w, http.StatusServiceUnavailable, "client gone: %v", r.Context().Err())
				return
			}
			lastErr = err.Error()
			continue // transient transport error: retry against the (re-resolved) owner
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			// The backend is shedding (admission, deadline, or a pool
			// closing under a handoff): drain and retry.
			lastErr = drainError(resp)
			continue
		case http.StatusMisdirectedRequest:
			// The shard moved: the binding we used is stale. Re-resolving
			// next attempt picks up a /map/assign that raced us.
			rt.misdirected.Add(1)
			lastErr = drainError(resp)
			continue
		}
		st.requests.Add(1)
		if resp.StatusCode == http.StatusOK {
			st.lat.Observe(time.Since(begin))
		}
		relay(w, resp)
		return
	}
	rt.failures.Add(1)
	if st, ok := rt.shards[lastID]; ok {
		st.failures.Add(1)
	}
	writeJSONStatus(w, http.StatusServiceUnavailable, DegradedResponse{
		Error: fmt.Sprintf("shard %d (%s) unreachable for model %s after %d attempts: %s",
			lastID, lastBack, canonical, rt.cfg.Retries, lastErr),
		Shard:    lastID,
		Backend:  lastBack,
		Model:    canonical,
		Attempts: rt.cfg.Retries,
	})
}

// proxyGet issues one backend call on the pooled transport.
func (rt *Router) proxyGet(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return rt.client.Do(req)
}

// relay copies a backend response through verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// drainError consumes a retryable response's body for its error line
// (and to hand the connection back to the keep-alive pool).
func drainError(resp *http.Response) string {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		return fmt.Sprintf("%s: %s", resp.Status, e.Error)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Status
}

// AssignResponse answers POST /map/assign.
type AssignResponse struct {
	Shard      int    `json:"shard"`
	Backend    string `json:"backend"`
	MapVersion uint64 `json:"mapVersion"`
}

// handleAssign repoints one shard to a new backend: the router-side step
// of a handoff, between the new owner's /shards/acquire and the old
// owner's /shards/release. With reload=1 the shard map file is re-read
// first, picking up model→shard changes (shard.Reassign) as well.
func (rt *Router) handleAssign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "/map/assign needs POST")
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad shard %q", r.URL.Query().Get("shard"))
		return
	}
	backend := r.URL.Query().Get("backend")
	if backend == "" {
		httpError(w, http.StatusBadRequest, "backend is required")
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if r.URL.Query().Get("reload") == "1" {
		m, err := shard.Load(rt.cfg.MapPath)
		if err != nil {
			httpError(w, http.StatusConflict, "reload shard map: %v", err)
			return
		}
		rt.smap = m
	}
	st, ok := rt.shards[id]
	if !ok {
		httpError(w, http.StatusConflict, "no shard %d in %s", id, rt.cfg.MapPath)
		return
	}
	st.backend = backend
	rt.rememberLocked(backend)
	rt.version++
	writeJSON(w, AssignResponse{Shard: id, Backend: backend, MapVersion: rt.version})
}

// bindings snapshots the shard→backend map, sorted by shard ID.
func (rt *Router) bindings() []shard.Shard {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]shard.Shard, 0, len(rt.smap.Shards))
	for i := range rt.smap.Shards {
		sh := rt.smap.Shards[i]
		sh.Models = append([]string(nil), sh.Models...)
		if st, ok := rt.shards[sh.ID]; ok {
			sh.Backend = st.backend
		}
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// rememberLocked records a backend in the known set; mu held exclusively
// (or the router not yet shared, as in New).
func (rt *Router) rememberLocked(backend string) {
	for _, b := range rt.known {
		if b == backend {
			return
		}
	}
	rt.known = append(rt.known, backend)
}

// boundSet returns the distinct currently-bound backend URLs in
// deterministic order — the serving topology /healthz probes.
func (rt *Router) boundSet() []string {
	seen := make(map[string]bool)
	var out []string
	for _, sh := range rt.bindings() {
		if !seen[sh.Backend] {
			seen[sh.Backend] = true
			out = append(out, sh.Backend)
		}
	}
	return out
}

// knownSet returns every backend ever bound, in first-seen order — the
// fan-out set of the measurement gathers (/stats, /info), which must
// count runs served under bindings that have since moved.
func (rt *Router) knownSet() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.known...)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSONStatus(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// errBackend wraps a scatter-gather failure with its backend.
func errBackend(backend string, err error) error {
	return fmt.Errorf("%s: %w", backend, err)
}

var errNoBackends = errors.New("router: the map binds no backends")
