package shard

import (
	"path/filepath"
	"reflect"
	"testing"
)

var paperModels = []string{"DSM", "DASDBS-DSM", "NSM", "NSM+index", "DASDBS-NSM"}

func TestPartitionRange(t *testing.T) {
	m, err := Partition(paperModels, 2, StrategyRange)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || len(m.Shards) != 2 {
		t.Fatalf("got version %d, %d shards", m.Version, len(m.Shards))
	}
	// 5 models over 2 shards: 3 + 2, contiguous in input order.
	if want := []string{"DSM", "DASDBS-DSM", "NSM"}; !reflect.DeepEqual(m.Shards[0].Models, want) {
		t.Errorf("shard 0 owns %v, want %v", m.Shards[0].Models, want)
	}
	if want := []string{"NSM+index", "DASDBS-NSM"}; !reflect.DeepEqual(m.Shards[1].Models, want) {
		t.Errorf("shard 1 owns %v, want %v", m.Shards[1].Models, want)
	}
}

func TestPartitionHashDeterministicAndComplete(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		a, err := Partition(paperModels, n, StrategyHash)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Partition(paperModels, n, StrategyHash)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: hash partition not deterministic", n)
		}
		for _, name := range paperModels {
			if _, ok := a.Owner(name); !ok {
				t.Fatalf("n=%d: %s unowned", n, name)
			}
		}
	}
	// Hash placement must not depend on input order.
	rev := []string{"DASDBS-NSM", "NSM+index", "NSM", "DASDBS-DSM", "DSM"}
	a, _ := Partition(paperModels, 4, StrategyHash)
	b, _ := Partition(rev, 4, StrategyHash)
	for _, name := range paperModels {
		ai, _ := a.Owner(name)
		bi, _ := b.Owner(name)
		if ai != bi {
			t.Errorf("%s: owner %d vs %d under reordering", name, ai, bi)
		}
	}
}

func TestPartitionExplicit(t *testing.T) {
	m, err := Partition(paperModels, 2, "explicit:DASDBS-DSM,NSM,NSM+index/DSM,DASDBS-NSM")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"DASDBS-DSM", "NSM", "NSM+index"}; !reflect.DeepEqual(m.Shards[0].Models, want) {
		t.Errorf("shard 0 owns %v, want %v", m.Shards[0].Models, want)
	}
	if want := []string{"DSM", "DASDBS-NSM"}; !reflect.DeepEqual(m.Shards[1].Models, want) {
		t.Errorf("shard 1 owns %v, want %v", m.Shards[1].Models, want)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("explicit map invalid: %v", err)
	}
	// A rewritten map keeps the full spec as its strategy.
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("round trip changed the map")
	}

	for _, spec := range []string{
		"explicit:DSM/NSM", // incomplete
		"explicit:DSM,DSM,NSM,NSM+index,DASDBS-NSM/DASDBS-DSM",   // duplicate
		"explicit:DSM,bogus,NSM,NSM+index,DASDBS-NSM/DASDBS-DSM", // unknown model
		"explicit:DSM,DASDBS-DSM,NSM,NSM+index,DASDBS-NSM",       // 1 group for 2 shards
	} {
		if _, err := Partition(paperModels, 2, spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(paperModels, 0, StrategyHash); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := Partition(nil, 2, StrategyHash); err == nil {
		t.Error("no models accepted")
	}
	if _, err := Partition(paperModels, 2, "modulo"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Map {
		m, _ := Partition(paperModels, 2, StrategyRange)
		return m
	}
	cases := map[string]func(*Map){
		"version 0":       func(m *Map) { m.Version = 0 },
		"bad strategy":    func(m *Map) { m.Strategy = "x" },
		"no shards":       func(m *Map) { m.Shards = nil },
		"negative id":     func(m *Map) { m.Shards[0].ID = -1 },
		"duplicate id":    func(m *Map) { m.Shards[1].ID = m.Shards[0].ID },
		"duplicate model": func(m *Map) { m.Shards[1].Models = append(m.Shards[1].Models, "DSM") },
		"empty name":      func(m *Map) { m.Shards[0].Models[0] = "" },
		"no models":       func(m *Map) { m.Shards[0].Models = nil; m.Shards[1].Models = nil },
	}
	for name, mutate := range cases {
		m := base()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReassignBumpsVersionAndMoves(t *testing.T) {
	m, _ := Partition(paperModels, 2, StrategyRange)
	v := m.Version
	if err := m.Reassign("NSM", 1); err != nil {
		t.Fatal(err)
	}
	if m.Version != v+1 {
		t.Errorf("version %d, want %d", m.Version, v+1)
	}
	if id, _ := m.Owner("NSM"); id != 1 {
		t.Errorf("NSM owned by %d, want 1", id)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("map invalid after reassign: %v", err)
	}
	// Idempotent retry: same target, still a version bump.
	if err := m.Reassign("NSM", 1); err != nil {
		t.Fatal(err)
	}
	if m.Version != v+2 {
		t.Errorf("version %d after idempotent reassign, want %d", m.Version, v+2)
	}
	if err := m.Reassign("NSM", 9); err == nil {
		t.Error("reassign to a missing shard accepted")
	}
	if err := m.Reassign("nope", 1); err == nil {
		t.Error("reassign of an unowned model accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, _ := Partition(paperModels, 3, StrategyHash)
	m.Shards[0].Backend = "http://127.0.0.1:9001"
	m.Shards[0].Segment = "bench.s0.codb"
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip changed the map:\n%+v\n%+v", m, got)
	}
}

func TestDecodeRejects(t *testing.T) {
	for name, data := range map[string]string{
		"garbage":        "not json",
		"unknown field":  `{"version":1,"strategy":"hash","shards":[{"id":0,"models":["DSM"]}],"extra":1}`,
		"trailing data":  `{"version":1,"strategy":"hash","shards":[{"id":0,"models":["DSM"]}]} {}`,
		"invalid map":    `{"version":0,"strategy":"hash","shards":[{"id":0,"models":["DSM"]}]}`,
		"empty document": ``,
	} {
		if _, err := Decode([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.shards.json")
	m, _ := Partition(paperModels, 2, StrategyRange)
	m.Shards[1].Segment = "bench.s1.codb"
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("load changed the map:\n%+v\n%+v", m, got)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNames(t *testing.T) {
	if got := SegmentName("/tmp/bench.codb", 2); got != "/tmp/bench.s2.codb" {
		t.Errorf("SegmentName = %q", got)
	}
	if got := MapName("/tmp/bench.codb"); got != "/tmp/bench.shards.json" {
		t.Errorf("MapName = %q", got)
	}
}

// FuzzMapRoundTrip pins the codec invariant: any input Decode accepts
// must re-encode to a document Decode accepts again, identical as a map
// (the property routers and backends rely on when they pass maps around).
func FuzzMapRoundTrip(f *testing.F) {
	m, _ := Partition(paperModels, 2, StrategyRange)
	seed, _ := m.Encode()
	f.Add(seed)
	m2, _ := Partition(paperModels, 4, StrategyHash)
	m2.Shards[0].Backend = "http://127.0.0.1:9001"
	m2.Shards[1].Segment = "bench.s1.codb"
	seed2, _ := m2.Encode()
	f.Add(seed2)
	f.Add([]byte(`{"version":1,"strategy":"hash","shards":[{"id":0,"models":["DSM"]}]}`))
	f.Add([]byte(`{"version":18446744073709551615,"strategy":"range","shards":[{"id":0,"models":["a","b"]},{"id":7,"models":["c"]}]}`))
	f.Add([]byte(`not a map`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected inputs are out of scope; only accepted maps must round-trip
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted map failed to encode: %v", err)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded map rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("round trip changed the map:\n%+v\n%+v", m, again)
		}
		// Clones must be equal and disconnected.
		c := m.Clone()
		if !reflect.DeepEqual(m, c) {
			t.Fatalf("clone differs")
		}
	})
}
