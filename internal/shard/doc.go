// Package shard holds the scale-out partition map: which storage models
// (the snapshot's model address table) each serving shard owns, which
// backend serves it, and which .codb segment file holds its data.
//
// The map is deliberately tiny and dependency-free — a versioned JSON
// document — because every participant of a deployment reads it: cogen
// writes it next to the per-shard segments it splits, coserve loads it to
// learn its model subset (rejecting out-of-shard requests with 421),
// coshard routes /run requests by it and scatter-gathers /stats across
// its backends, and a rebalance bumps its version so every party can tell
// a stale map from the current one.
//
// Partitioning is by storage model. The paper's physical-I/O accounting
// is strictly per object space — no query ever crosses storage models —
// so a model-granular split preserves every counter bit-identically: each
// backend measures exactly what a single node would have measured for the
// models it owns, and the union of the shards' /stats cells is the single
// node's cell set. Sharding therefore lives entirely outside the paper's
// counted I/O (see docs/PAPER_MAP.md).
//
// Two partition strategies exist: "hash" (FNV-1a of the model name modulo
// the shard count — stable under reordering of the model list) and
// "range" (contiguous even slices in the given model order). Both are
// deterministic: the same inputs produce the same map, so independently
// split deployments agree.
package shard
