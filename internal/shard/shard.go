package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Strategy names accepted by Partition and carried in the map. A
// rebalanced map keeps the strategy it was born with; Reassign only bumps
// the version — the strategy records how the initial split was computed,
// not an invariant the current assignment still satisfies.
const (
	// StrategyHash assigns each model to FNV-1a(name) mod #shards: stable
	// under reordering and growth of the model list.
	StrategyHash = "hash"
	// StrategyRange slices the model list into contiguous, evenly sized
	// key ranges in the given order.
	StrategyRange = "range"
	// StrategyExplicit prefixes an operator-chosen assignment:
	// "explicit:A,B/C" puts models A and B on shard 0 and C on shard 1.
	// Model costs are wildly uneven (one model can be a third of the
	// total work), so a load-aware split needs the operator's numbers —
	// neither hash nor range can know them.
	StrategyExplicit = "explicit:"
)

// ErrFormat reports a structurally invalid shard map.
var ErrFormat = errors.New("shard: invalid shard map")

// Shard is one partition of the model address table: the models it owns,
// the backend URL serving it (empty until a deployment binds one) and the
// .codb segment file holding exactly its models (empty when the shard
// serves from an unsplit full snapshot).
type Shard struct {
	ID      int      `json:"id"`
	Models  []string `json:"models"`
	Backend string   `json:"backend,omitempty"`
	Segment string   `json:"segment,omitempty"`
}

// Owns reports whether the shard owns the named model.
func (s *Shard) Owns(model string) bool {
	for _, m := range s.Models {
		if m == model {
			return true
		}
	}
	return false
}

// Map is the versioned partition of the model address table. The version
// is bumped by every reassignment, so routers and backends can order two
// maps of the same deployment; it never goes backwards.
type Map struct {
	Version  uint64  `json:"version"`
	Strategy string  `json:"strategy"`
	Shards   []Shard `json:"shards"`
}

// Partition splits the models across n shards with the given strategy
// (StrategyHash or StrategyRange). The result has version 1 and no
// backend/segment bindings. Empty shards are legal under StrategyHash
// (two models can collide); every model lands in exactly one shard.
func Partition(models []string, n int, strategy string) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: %d shards", n)
	}
	if len(models) == 0 {
		return nil, errors.New("shard: no models to partition")
	}
	m := &Map{Version: 1, Strategy: strategy, Shards: make([]Shard, n)}
	for i := range m.Shards {
		m.Shards[i].ID = i
	}
	switch strategy {
	case StrategyHash:
		for _, name := range models {
			h := fnv.New32a()
			h.Write([]byte(name))
			id := int(h.Sum32() % uint32(n))
			m.Shards[id].Models = append(m.Shards[id].Models, name)
		}
	case StrategyRange:
		// Contiguous slices, remainder spread over the leading shards so
		// sizes differ by at most one.
		per, rem := len(models)/n, len(models)%n
		next := 0
		for i := range m.Shards {
			take := per
			if i < rem {
				take++
			}
			m.Shards[i].Models = append([]string(nil), models[next:next+take]...)
			next += take
		}
	default:
		if !strings.HasPrefix(strategy, StrategyExplicit) {
			return nil, fmt.Errorf("shard: unknown strategy %q (want %s, %s or %sA,B/C)",
				strategy, StrategyHash, StrategyRange, StrategyExplicit)
		}
		have := make(map[string]bool, len(models))
		for _, name := range models {
			have[name] = true
		}
		groups := strings.Split(strings.TrimPrefix(strategy, StrategyExplicit), "/")
		if len(groups) != n {
			return nil, fmt.Errorf("shard: explicit spec names %d shards, -split asked for %d", len(groups), n)
		}
		for i, group := range groups {
			for _, name := range strings.Split(group, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if !have[name] {
					return nil, fmt.Errorf("shard: explicit spec names unknown model %q", name)
				}
				m.Shards[i].Models = append(m.Shards[i].Models, name)
			}
		}
		assigned := 0
		for i := range m.Shards {
			assigned += len(m.Shards[i].Models)
		}
		if assigned != len(models) {
			return nil, fmt.Errorf("shard: explicit spec assigns %d of %d models", assigned, len(models))
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the structural invariants every consumer relies on:
// a positive version, a known strategy, unique non-negative shard IDs,
// and every model owned by exactly one shard.
func (m *Map) Validate() error {
	if m.Version == 0 {
		return fmt.Errorf("%w: version 0", ErrFormat)
	}
	if m.Strategy != StrategyHash && m.Strategy != StrategyRange &&
		!strings.HasPrefix(m.Strategy, StrategyExplicit) {
		return fmt.Errorf("%w: strategy %q", ErrFormat, m.Strategy)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("%w: no shards", ErrFormat)
	}
	ids := make(map[int]bool, len(m.Shards))
	owners := make(map[string]int)
	total := 0
	for i := range m.Shards {
		s := &m.Shards[i]
		if s.ID < 0 {
			return fmt.Errorf("%w: shard id %d", ErrFormat, s.ID)
		}
		if ids[s.ID] {
			return fmt.Errorf("%w: duplicate shard id %d", ErrFormat, s.ID)
		}
		ids[s.ID] = true
		for _, name := range s.Models {
			if name == "" {
				return fmt.Errorf("%w: shard %d owns an unnamed model", ErrFormat, s.ID)
			}
			if prev, dup := owners[name]; dup {
				return fmt.Errorf("%w: model %q owned by shards %d and %d", ErrFormat, name, prev, s.ID)
			}
			owners[name] = s.ID
			total++
		}
	}
	if total == 0 {
		return fmt.Errorf("%w: no models owned by any shard", ErrFormat)
	}
	return nil
}

// Owner returns the ID of the shard owning the model.
func (m *Map) Owner(model string) (int, bool) {
	for i := range m.Shards {
		if m.Shards[i].Owns(model) {
			return m.Shards[i].ID, true
		}
	}
	return 0, false
}

// Shard returns the shard with the given ID.
func (m *Map) Shard(id int) (*Shard, bool) {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return &m.Shards[i], true
		}
	}
	return nil, false
}

// Models returns every owned model, sorted — the full address table the
// map partitions.
func (m *Map) Models() []string {
	var out []string
	for i := range m.Shards {
		out = append(out, m.Shards[i].Models...)
	}
	sort.Strings(out)
	return out
}

// Reassign moves a model to the shard with the given ID and bumps the
// version — the order handoffs key off (a backend acquiring a shard
// learns the new version; a router seeing 421 against an old version
// re-resolves). The target shard must exist; moving a model to its
// current owner still bumps the version (an idempotent handoff retry is
// indistinguishable from a fresh one and must produce a newer map).
func (m *Map) Reassign(model string, to int) error {
	dst, ok := m.Shard(to)
	if !ok {
		return fmt.Errorf("shard: reassign %q: no shard %d", model, to)
	}
	from, owned := m.Owner(model)
	if !owned {
		return fmt.Errorf("shard: reassign %q: model not in map", model)
	}
	if from != to {
		src, _ := m.Shard(from)
		keep := src.Models[:0]
		for _, name := range src.Models {
			if name != model {
				keep = append(keep, name)
			}
		}
		src.Models = keep
		dst.Models = append(dst.Models, model)
	}
	m.Version++
	return nil
}

// Clone returns a deep copy (Reassign mutates; routers hand out clones).
func (m *Map) Clone() *Map {
	out := &Map{Version: m.Version, Strategy: m.Strategy, Shards: make([]Shard, len(m.Shards))}
	for i, s := range m.Shards {
		out.Shards[i] = Shard{ID: s.ID, Backend: s.Backend, Segment: s.Segment}
		if s.Models != nil {
			// Preserve empty-but-non-nil (a decoded "models": []): clones
			// must compare equal to their original, byte for byte.
			out.Shards[i].Models = append(make([]string, 0, len(s.Models)), s.Models...)
		}
	}
	return out
}

// Encode serializes the map as indented JSON (the on-disk and on-wire
// form; human-editable by design).
func (m *Map) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses and validates a serialized map. Unknown fields are
// rejected: a map is deployment configuration, where a typo silently
// ignored becomes a shard served by nobody.
func Decode(data []byte) (*Map, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var m Map
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	// Trailing garbage after the document is a truncated or concatenated
	// file, not a map.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data", ErrFormat)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Load reads and validates a map file.
func Load(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Write serializes the map to path atomically (temp file + rename in the
// same directory), so a concurrent Load never observes a half-written
// map.
func (m *Map) Write(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".shards-*")
	if err != nil {
		return err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SegmentName derives the per-shard segment path from a snapshot path:
// bench.codb → bench.s0.codb. Segments sit next to the snapshot they were
// split from.
func SegmentName(dbPath string, id int) string {
	ext := filepath.Ext(dbPath)
	return fmt.Sprintf("%s.s%d%s", strings.TrimSuffix(dbPath, ext), id, ext)
}

// MapName derives the shard-map path from a snapshot path:
// bench.codb → bench.shards.json.
func MapName(dbPath string) string {
	ext := filepath.Ext(dbPath)
	return strings.TrimSuffix(dbPath, ext) + ".shards.json"
}
