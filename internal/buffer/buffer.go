package buffer

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"complexobj/internal/disk"
)

// Policy selects the page replacement algorithm.
type Policy int

const (
	// LRU evicts the least recently used unpinned page (default).
	LRU Policy = iota
	// Clock evicts with the second-chance clock algorithm; provided as an
	// ablation to show the paper's findings are robust to the (unnamed)
	// DASDBS replacement policy.
	Clock
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Clock:
		return "Clock"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

var (
	// ErrNoFrames reports that every frame is pinned and none can be evicted.
	ErrNoFrames = errors.New("buffer: all frames pinned")
	// ErrNotFixed reports an Unfix of a page that is not pinned.
	ErrNotFixed = errors.New("buffer: page not fixed")
	// ErrBorrowedWrite reports a dirty Unfix of a frame still borrowed
	// from backend memory — the caller modified a page without calling
	// MarkDirty first.
	ErrBorrowedWrite = errors.New("buffer: dirty unfix of borrowed frame (MarkDirty before writing)")
)

// Frame is a cached page. Data is the raw page image (including the 36-byte
// system header area); callers slice out the payload themselves. A Frame
// (and its Data) is only valid while the caller holds a pin on it: after
// Unfix the frame may be evicted and its memory recycled for another page.
//
// A frame loaded from a backend that supports zero-copy reads
// (disk.StablePager) starts out borrowed: Data aliases backend memory
// instead of a private pool buffer. Borrowed data is read-only — callers
// that intend to modify a page must call Pool.MarkDirty first, which
// promotes the frame to an owned copy and replaces Data (so the page
// must be re-sliced afterwards). Unfixing a still-borrowed frame as
// dirty is an error: it means something wrote through the borrow.
type Frame struct {
	ID       disk.PageID
	Data     []byte
	pins     int
	dirty    bool
	borrowed bool // Data aliases backend memory; read-only until promoted
	ref      bool // Clock reference bit

	prev, next   *Frame // LRU list links (most recent at head)
	dprev, dnext *Frame // intrusive dirty list links (insertion order)
}

// Dirty reports whether the frame holds unwritten modifications.
func (f *Frame) Dirty() bool { return f.dirty }

// Borrowed reports whether Data still aliases backend memory (zero-copy
// fix not yet promoted by MarkDirty).
func (f *Frame) Borrowed() bool { return f.borrowed }

// Pool is the buffer manager.
type Pool struct {
	mu       sync.Mutex
	dev      *disk.Disk
	capacity int
	policy   Policy

	index    []*Frame // resident frames keyed by PageID; nil = absent
	resident int
	head     *Frame // LRU head (most recently used)
	tail     *Frame // LRU tail (least recently used)
	clock    []*Frame
	hand     int

	dirtyHead *Frame // intrusive dirty list, insertion order
	dirtyTail *Frame
	dirtyLen  int

	freeData   [][]byte // recycled page buffers of evicted frames
	freeFrames []*Frame // recycled Frame structs of evicted frames

	scratch      []*Frame      // victim collection for flush/burst (reused)
	views        [][]byte      // ReadRunShared result scratch (reused)
	viewBorrowed []bool        // ReadRunShared borrow flags scratch (reused)
	ioBufs       [][]byte      // WriteRun argument scratch (reused)
	ids          []disk.PageID // sorted-id scratch for FixRun/FlushPages (reused)
	getBufFn     func() []byte // bound getBuf, built once (avoids per-read closures)

	fixes   int64
	hits    int64
	borrows int64
}

// New creates a pool of capacity page frames backed by dev.
func New(dev *disk.Disk, capacity int, policy Policy) *Pool {
	if capacity <= 0 {
		panic("buffer: non-positive capacity")
	}
	p := &Pool{
		dev:      dev,
		capacity: capacity,
		policy:   policy,
	}
	p.getBufFn = p.getBuf
	return p
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// DirtyLen returns the number of resident frames holding unwritten
// modifications (view recycling uses it to decide whether a request
// mutated anything before Discard throws the evidence away).
func (p *Pool) DirtyLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirtyLen
}

// Fixes returns the total number of page fixes so far.
func (p *Pool) Fixes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fixes
}

// Hits returns the number of fixes served without a disk read.
func (p *Pool) Hits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// Borrows returns how many page loads were satisfied zero-copy (frame
// data borrowed from backend memory instead of copied into pool
// buffers). Diagnostics only — no paper counter depends on it.
func (p *Pool) Borrows() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.borrows
}

// ResetStats zeroes the fix/hit counters (disk counters are reset on the
// device itself).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fixes, p.hits = 0, 0
}

// frameAt returns the resident frame of id, or nil.
func (p *Pool) frameAt(id disk.PageID) *Frame {
	if int(id) < len(p.index) {
		return p.index[id]
	}
	return nil
}

// install registers f as the resident frame of f.ID, growing the dense
// index as the device grows.
func (p *Pool) install(f *Frame) {
	if int(f.ID) >= len(p.index) {
		need := int(f.ID) + 1
		if need < 2*len(p.index) {
			need = 2 * len(p.index)
		}
		grown := make([]*Frame, need)
		copy(grown, p.index)
		p.index = grown
	}
	p.index[f.ID] = f
	p.resident++
	p.insert(f)
}

// Fix pins the page in the pool, reading it from disk if absent, and
// returns its frame. Every call counts as one buffer fix. The caller must
// Unfix the page when done.
//
// The hit path — the hottest operation of the whole simulation — performs
// no allocation.
func (p *Pool) Fix(id disk.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f := p.frameAt(id); f != nil {
		p.fixes++
		p.hits++
		f.pins++
		p.touch(f)
		return f, nil
	}
	if err := p.loadRun(id, 1); err != nil {
		return nil, err
	}
	f := p.frameAt(id)
	if f == nil {
		return nil, fmt.Errorf("buffer: page %d vanished after load", id)
	}
	p.fixes++
	f.pins++
	p.touch(f)
	return f, nil
}

// FixRun pins a set of pages, fetching all absent pages from disk using one
// I/O call per contiguous run of missing page IDs. This models DASDBS
// fetching the data pages of a clustered object together. Frames are
// returned in input order and each counts as one fix.
func (p *Pool) FixRun(ids []disk.PageID) ([]*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fixRunLocked(ids)
}

func (p *Pool) fixRunLocked(ids []disk.PageID) ([]*Frame, error) {
	out := make([]*Frame, len(ids))
	missing := p.ids[:0]
	for i, id := range ids {
		if f := p.frameAt(id); f != nil {
			p.fixes++
			p.hits++
			f.pins++
			p.touch(f)
			out[i] = f
		} else {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		// Sort and deduplicate (the same absent page may be requested twice
		// in one run), then fetch each contiguous run with one I/O call.
		slices.Sort(missing)
		uniq := missing[:0]
		for i, id := range missing {
			if i == 0 || id != missing[i-1] {
				uniq = append(uniq, id)
			}
		}
		for start := 0; start < len(uniq); {
			end := start + 1
			for end < len(uniq) && uniq[end] == uniq[end-1]+1 {
				end++
			}
			if err := p.loadRun(uniq[start], end-start); err != nil {
				p.ids = missing[:0]
				unpinAll(out)
				return nil, err
			}
			start = end
		}
		p.ids = missing[:0]
		for i, id := range ids {
			if out[i] != nil {
				continue
			}
			f := p.frameAt(id)
			if f == nil {
				unpinAll(out)
				return nil, fmt.Errorf("buffer: page %d vanished after load", id)
			}
			p.fixes++
			f.pins++
			p.touch(f)
			out[i] = f
		}
	} else {
		p.ids = missing[:0]
	}
	return out, nil
}

// unpinAll releases the pins taken on the frames collected so far, so a
// FixRun that fails halfway does not leak pins on the pages it had already
// fixed (the caller only sees the error and cannot unfix them itself). The
// fix/hit counters are left as recorded: those fixes did happen.
func unpinAll(out []*Frame) {
	for _, f := range out {
		if f != nil {
			f.pins--
		}
	}
}

// getBuf returns a page buffer, recycled if possible.
func (p *Pool) getBuf() []byte {
	if n := len(p.freeData); n > 0 {
		b := p.freeData[n-1]
		p.freeData[n-1] = nil
		p.freeData = p.freeData[:n-1]
		return b
	}
	return make([]byte, p.dev.PageSize())
}

// getFrame returns a zeroed Frame struct, recycled if possible.
func (p *Pool) getFrame() *Frame {
	if n := len(p.freeFrames); n > 0 {
		f := p.freeFrames[n-1]
		p.freeFrames[n-1] = nil
		p.freeFrames = p.freeFrames[:n-1]
		return f
	}
	return &Frame{}
}

// loadRun reads a contiguous run of n absent pages starting at start with
// one disk call and installs them unpinned (the caller pins them right
// after). Pages the backend can share arrive borrowed (Frame.Data aliases
// backend memory, no copy); the rest are filled into free-list buffers,
// so in steady state this allocates nothing either way.
func (p *Pool) loadRun(start disk.PageID, n int) error {
	// Make room first so that eviction never kicks out a page of this run.
	for p.resident+n > p.capacity {
		if err := p.evictOne(); err != nil {
			return err
		}
	}
	views, borrowed := p.views, p.viewBorrowed
	for len(views) < n {
		views = append(views, nil)
		borrowed = append(borrowed, false)
	}
	views, borrowed = views[:n], borrowed[:n]
	if err := p.dev.ReadRunShared(start, views, borrowed, p.getBufFn); err != nil {
		// Reclaim the private buffers the device had already handed out;
		// borrowed entries are the backend's memory and just get dropped.
		for i := range views {
			if views[i] != nil && !borrowed[i] {
				p.freeData = append(p.freeData, views[i])
			}
			views[i] = nil
		}
		p.views, p.viewBorrowed = views[:0], borrowed[:0]
		return err
	}
	for i := 0; i < n; i++ {
		f := p.getFrame()
		f.ID = start + disk.PageID(i)
		f.Data = views[i]
		f.borrowed = borrowed[i]
		if borrowed[i] {
			p.borrows++
		}
		views[i] = nil
		p.install(f)
	}
	p.views, p.viewBorrowed = views[:0], borrowed[:0]
	return nil
}

// Unfix releases one pin on the page; dirty marks the page modified so it
// is written back before leaving the pool. A dirty Unfix of a frame that
// is still borrowed is an error: the writer skipped MarkDirty, so its
// modifications went through (or raced with) shared backend memory. The
// frame is unpinned either way.
func (p *Pool) Unfix(id disk.PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.frameAt(id)
	if f == nil || f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotFixed, id)
	}
	f.pins--
	if dirty {
		if f.borrowed {
			return fmt.Errorf("%w: page %d", ErrBorrowedWrite, id)
		}
		p.markDirty(f)
	}
	return nil
}

// MarkDirty declares the intent to modify the pinned frame: it promotes a
// borrowed frame to an owned private copy and puts the frame on the dirty
// list. Callers must invoke it BEFORE writing and must re-derive any page
// wrapper from f.Data afterwards — promotion replaces the slice. Calling
// it on an already-owned frame just marks it dirty (idempotent), so write
// paths need no borrowed/owned branching of their own.
func (p *Pool) MarkDirty(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.promote(f)
	p.markDirty(f)
}

// promote turns a borrowed frame into an owned one by copying the page
// into pool memory. No-op for owned frames.
func (p *Pool) promote(f *Frame) {
	if !f.borrowed {
		return
	}
	buf := p.getBuf()
	copy(buf, f.Data)
	f.Data = buf
	f.borrowed = false
}

// --- dirty list -------------------------------------------------------------

// markDirty puts f on the dirty list (idempotent).
func (p *Pool) markDirty(f *Frame) {
	if f.dirty {
		return
	}
	f.dirty = true
	f.dprev = p.dirtyTail
	f.dnext = nil
	if p.dirtyTail != nil {
		p.dirtyTail.dnext = f
	} else {
		p.dirtyHead = f
	}
	p.dirtyTail = f
	p.dirtyLen++
}

// clearDirty removes f from the dirty list (idempotent).
func (p *Pool) clearDirty(f *Frame) {
	if !f.dirty {
		return
	}
	f.dirty = false
	if f.dprev != nil {
		f.dprev.dnext = f.dnext
	} else {
		p.dirtyHead = f.dnext
	}
	if f.dnext != nil {
		f.dnext.dprev = f.dprev
	} else {
		p.dirtyTail = f.dprev
	}
	f.dprev, f.dnext = nil, nil
	p.dirtyLen--
}

// evictOne drops one unpinned victim frame and recycles its memory. A dirty
// victim triggers a write burst: every unpinned dirty frame is written back
// in contiguous batches before the victim is dropped. This mirrors the
// DASDBS behaviour the paper observes in §5.2 — pages are written "only
// then if either the query execution has been finished (database
// disconnect) or the page buffer overflows", and overflow writes carry many
// pages per I/O call ("on the average respectively 30 and 20 pages per
// write for query 3").
func (p *Pool) evictOne() error {
	f := p.victim()
	if f == nil {
		return ErrNoFrames
	}
	if f.dirty {
		if err := p.writeBurst(); err != nil {
			return err
		}
	}
	p.remove(f)
	p.index[f.ID] = nil
	p.resident--
	p.recycle(f)
	return nil
}

// recycle returns an evicted frame's memory to the free lists. Borrowed
// Data is backend memory, not the pool's to reuse — it is simply let go.
func (p *Pool) recycle(f *Frame) {
	if !f.borrowed {
		p.freeData = append(p.freeData, f.Data)
	}
	*f = Frame{}
	p.freeFrames = append(p.freeFrames, f)
}

// writeVictims writes the frames in p.scratch back to disk, batching
// contiguous page IDs into single calls, and clears their dirty bits.
// Frames stay resident. The scratch list is consumed.
func (p *Pool) writeVictims() error {
	victims := p.scratch
	slices.SortFunc(victims, func(a, b *Frame) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	var err error
	for start := 0; start < len(victims) && err == nil; {
		end := start + 1
		for end < len(victims) && victims[end].ID == victims[end-1].ID+1 {
			end++
		}
		pages := p.ioBufs[:0]
		for _, f := range victims[start:end] {
			pages = append(pages, f.Data)
		}
		p.ioBufs = pages[:0]
		if err = p.dev.WriteRun(victims[start].ID, pages); err != nil {
			break
		}
		for _, f := range victims[start:end] {
			p.clearDirty(f)
		}
		start = end
	}
	for i := range victims {
		victims[i] = nil
	}
	p.scratch = victims[:0]
	return err
}

// writeBurst writes back all unpinned dirty frames (overflow behaviour).
func (p *Pool) writeBurst() error {
	victims := p.scratch[:0]
	for f := p.dirtyHead; f != nil; f = f.dnext {
		if f.pins == 0 {
			victims = append(victims, f)
		}
	}
	p.scratch = victims
	return p.writeVictims()
}

// FlushAll writes every dirty page back to disk, batching contiguous page
// IDs into single write calls (DASDBS behaviour at query end / disconnect),
// and clears their dirty bits. Resident pages stay cached.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushDirtyLocked()
}

// flushDirtyLocked writes the whole dirty list (pinned pages included).
func (p *Pool) flushDirtyLocked() error {
	victims := p.scratch[:0]
	for f := p.dirtyHead; f != nil; f = f.dnext {
		victims = append(victims, f)
	}
	p.scratch = victims
	return p.writeVictims()
}

// FlushPages writes back the given pages (dirty or not) immediately,
// grouping contiguous runs into single calls. It models the DASDBS
// "change attribute" page-pool behaviour of §5.3, where each update
// operation allocates a page pool of which all pages are written.
// Non-resident pages are skipped.
func (p *Pool) FlushPages(ids []disk.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	sorted := append(p.ids[:0], ids...)
	slices.Sort(sorted)
	victims := p.scratch[:0]
	for i, id := range sorted {
		if i > 0 && id == sorted[i-1] {
			continue
		}
		if f := p.frameAt(id); f != nil {
			victims = append(victims, f)
		}
	}
	p.ids = sorted[:0]
	p.scratch = victims
	return p.writeVictims()
}

// Drop discards the resident frames of the given pages without writing
// them back, recycling their memory. It is the cache-coherence hook for
// page recycling: when the free-space map hands a dead page to a new
// object, any stale frame (clean or dirty — its content belongs to the
// relocated object's old incarnation) must leave the pool before the new
// image is written to the device directly. Dropping performs no I/O and
// touches no counter. Non-resident pages are ignored; dropping a pinned
// page is an error.
func (p *Pool) Drop(ids []disk.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		f := p.frameAt(id)
		if f == nil {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("buffer: drop of pinned page %d", id)
		}
		p.remove(f)
		p.index[f.ID] = nil
		p.resident--
		p.recycle(f)
	}
	return nil
}

// Reset flushes all dirty pages and then empties the pool, so the next
// queries start with a cold cache. Returns an error if a page is still
// pinned.
func (p *Pool) Reset() error {
	return p.empty(true)
}

// Discard empties the pool without writing dirty pages back. It exists
// for view recycling: when the device underneath is about to be reset to
// a pristine shared base, the dirty frames describe pages that are about
// to vanish, and flushing them would only materialize overlay copies that
// are dropped a moment later. Returns an error if a page is still pinned.
// Frame structs and page buffers go to the free lists, so a recycled
// view's next request allocates nothing on the buffer hot path.
func (p *Pool) Discard() error {
	return p.empty(false)
}

// empty drops every resident frame, optionally flushing dirty ones first.
func (p *Pool) empty(flush bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Collect resident frames into a local list first: flushing reuses the
	// shared scratch, and recycling a frame severs the list links the
	// traversal would follow.
	residents := make([]*Frame, 0, p.resident)
	p.eachResident(func(f *Frame) {
		residents = append(residents, f)
	})
	for _, f := range residents {
		if f.pins > 0 {
			return fmt.Errorf("buffer: reset with pinned page %d", f.ID)
		}
	}
	if flush {
		if err := p.flushDirtyLocked(); err != nil {
			return err
		}
	}
	for _, f := range residents {
		p.index[f.ID] = nil
		p.recycle(f)
	}
	p.resident = 0
	p.head, p.tail = nil, nil
	p.clock = p.clock[:0]
	p.hand = 0
	p.dirtyHead, p.dirtyTail, p.dirtyLen = nil, nil, 0
	return nil
}

// eachResident visits every resident frame via the replacement-policy
// structure (all resident frames are on the LRU list or the clock ring).
func (p *Pool) eachResident(fn func(*Frame)) {
	switch p.policy {
	case Clock:
		for _, f := range p.clock {
			fn(f)
		}
	default:
		for f := p.head; f != nil; f = f.next {
			fn(f)
		}
	}
}

// Contains reports whether the page is resident (test/diagnostic helper).
func (p *Pool) Contains(id disk.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.frameAt(id) != nil
}

// --- replacement policies ---------------------------------------------------

func (p *Pool) insert(f *Frame) {
	switch p.policy {
	case Clock:
		f.ref = true
		p.clock = append(p.clock, f)
	default:
		p.pushFront(f)
	}
}

func (p *Pool) touch(f *Frame) {
	switch p.policy {
	case Clock:
		f.ref = true
	default:
		p.unlink(f)
		p.pushFront(f)
	}
}

func (p *Pool) remove(f *Frame) {
	p.clearDirty(f)
	switch p.policy {
	case Clock:
		for i, c := range p.clock {
			if c == f {
				p.clock = append(p.clock[:i], p.clock[i+1:]...)
				if p.hand > i {
					p.hand--
				}
				if len(p.clock) > 0 {
					p.hand %= len(p.clock)
				} else {
					p.hand = 0
				}
				return
			}
		}
	default:
		p.unlink(f)
	}
}

func (p *Pool) victim() *Frame {
	switch p.policy {
	case Clock:
		if len(p.clock) == 0 {
			return nil
		}
		// Two sweeps suffice: the first clears reference bits, the second
		// must find an unpinned frame if one exists.
		for sweep := 0; sweep < 2*len(p.clock); sweep++ {
			f := p.clock[p.hand]
			p.hand = (p.hand + 1) % len(p.clock)
			if f.pins > 0 {
				continue
			}
			if f.ref {
				f.ref = false
				continue
			}
			return f
		}
		return nil
	default:
		for f := p.tail; f != nil; f = f.prev {
			if f.pins == 0 {
				return f
			}
		}
		return nil
	}
}

func (p *Pool) pushFront(f *Frame) {
	f.prev = nil
	f.next = p.head
	if p.head != nil {
		p.head.prev = f
	}
	p.head = f
	if p.tail == nil {
		p.tail = f
	}
}

func (p *Pool) unlink(f *Frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if p.head == f {
		p.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if p.tail == f {
		p.tail = f.prev
	}
	f.prev, f.next = nil, nil
}
