// Package buffer implements the database cache of the simulated DASDBS
// installation: a bounded pool of page frames with fix/unfix (pin) semantics.
//
// The paper's measurements hinge on three behaviours of this component:
//
//   - buffer fixes are counted (Table 6 uses them as a CPU-load indicator),
//   - pages are read from disk only on a fix miss, with contiguous multi-page
//     requests served by a single I/O call (Table 5),
//   - dirty pages are written back either when the query finishes
//     ("database disconnect") or when the pool overflows, which is why
//     writes batch many pages per call (§5.2) and why query 2b/3b degrade
//     once the 1200-page cache overflows (§5.4, Figure 6).
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"complexobj/internal/disk"
)

// Policy selects the page replacement algorithm.
type Policy int

const (
	// LRU evicts the least recently used unpinned page (default).
	LRU Policy = iota
	// Clock evicts with the second-chance clock algorithm; provided as an
	// ablation to show the paper's findings are robust to the (unnamed)
	// DASDBS replacement policy.
	Clock
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Clock:
		return "Clock"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

var (
	// ErrNoFrames reports that every frame is pinned and none can be evicted.
	ErrNoFrames = errors.New("buffer: all frames pinned")
	// ErrNotFixed reports an Unfix of a page that is not pinned.
	ErrNotFixed = errors.New("buffer: page not fixed")
)

// Frame is a cached page. Data is the raw page image (including the 36-byte
// system header area); callers slice out the payload themselves.
type Frame struct {
	ID    disk.PageID
	Data  []byte
	pins  int
	dirty bool
	ref   bool // Clock reference bit

	prev, next *Frame // LRU list links (most recent at head)
}

// Dirty reports whether the frame holds unwritten modifications.
func (f *Frame) Dirty() bool { return f.dirty }

// Pool is the buffer manager.
type Pool struct {
	mu       sync.Mutex
	dev      *disk.Disk
	capacity int
	policy   Policy

	frames map[disk.PageID]*Frame
	head   *Frame // LRU head (most recently used)
	tail   *Frame // LRU tail (least recently used)
	clock  []*Frame
	hand   int

	fixes int64
	hits  int64
}

// New creates a pool of capacity page frames backed by dev.
func New(dev *disk.Disk, capacity int, policy Policy) *Pool {
	if capacity <= 0 {
		panic("buffer: non-positive capacity")
	}
	return &Pool{
		dev:      dev,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[disk.PageID]*Frame, capacity),
	}
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Fixes returns the total number of page fixes so far.
func (p *Pool) Fixes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fixes
}

// Hits returns the number of fixes served without a disk read.
func (p *Pool) Hits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// ResetStats zeroes the fix/hit counters (disk counters are reset on the
// device itself).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fixes, p.hits = 0, 0
}

// Fix pins the page in the pool, reading it from disk if absent, and
// returns its frame. Every call counts as one buffer fix. The caller must
// Unfix the page when done.
func (p *Pool) Fix(id disk.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	frames, err := p.fixRunLocked([]disk.PageID{id})
	if err != nil {
		return nil, err
	}
	return frames[0], nil
}

// FixRun pins a set of pages, fetching all absent pages from disk using one
// I/O call per contiguous run of missing page IDs. This models DASDBS
// fetching the data pages of a clustered object together. Frames are
// returned in input order and each counts as one fix.
func (p *Pool) FixRun(ids []disk.PageID) ([]*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fixRunLocked(ids)
}

func (p *Pool) fixRunLocked(ids []disk.PageID) ([]*Frame, error) {
	out := make([]*Frame, len(ids))
	var missing []disk.PageID
	for i, id := range ids {
		if f, ok := p.frames[id]; ok {
			p.fixes++
			p.hits++
			f.pins++
			p.touch(f)
			out[i] = f
		} else {
			missing = append(missing, id)
			_ = i
		}
	}
	if len(missing) > 0 {
		// Deduplicate while preserving order (the same absent page may be
		// requested twice in one run).
		seen := make(map[disk.PageID]bool, len(missing))
		uniq := missing[:0]
		for _, id := range missing {
			if !seen[id] {
				seen[id] = true
				uniq = append(uniq, id)
			}
		}
		sort.Slice(uniq, func(a, b int) bool { return uniq[a] < uniq[b] })
		for start := 0; start < len(uniq); {
			end := start + 1
			for end < len(uniq) && uniq[end] == uniq[end-1]+1 {
				end++
			}
			if err := p.loadRun(uniq[start:end]); err != nil {
				return nil, err
			}
			start = end
		}
		for i, id := range ids {
			if out[i] != nil {
				continue
			}
			f := p.frames[id]
			if f == nil {
				return nil, fmt.Errorf("buffer: page %d vanished after load", id)
			}
			p.fixes++
			f.pins++
			p.touch(f)
			out[i] = f
		}
	}
	return out, nil
}

// loadRun reads a contiguous run of absent pages with one disk call and
// installs them unpinned (the caller pins them right after).
func (p *Pool) loadRun(run []disk.PageID) error {
	// Make room first so that eviction never kicks out a page of this run.
	for len(p.frames)+len(run) > p.capacity {
		if err := p.evictOne(); err != nil {
			return err
		}
	}
	data, err := p.dev.ReadRun(run[0], len(run))
	if err != nil {
		return err
	}
	for i, id := range run {
		f := &Frame{ID: id, Data: data[i]}
		p.frames[id] = f
		p.insert(f)
	}
	return nil
}

// Unfix releases one pin on the page; dirty marks the page modified so it
// is written back before leaving the pool.
func (p *Pool) Unfix(id disk.PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok || f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotFixed, id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	return nil
}

// evictOne drops one unpinned victim frame. A dirty victim triggers a
// write burst: every unpinned dirty frame is written back in contiguous
// batches before the victim is dropped. This mirrors the DASDBS behaviour
// the paper observes in §5.2 — pages are written "only then if either the
// query execution has been finished (database disconnect) or the page
// buffer overflows", and overflow writes carry many pages per I/O call
// ("on the average respectively 30 and 20 pages per write for query 3").
func (p *Pool) evictOne() error {
	f := p.victim()
	if f == nil {
		return ErrNoFrames
	}
	if f.dirty {
		if err := p.writeBurst(); err != nil {
			return err
		}
	}
	p.remove(f)
	delete(p.frames, f.ID)
	return nil
}

// writeBurst writes back all unpinned dirty frames, batching contiguous
// page IDs into single calls, and clears their dirty bits. Frames stay
// resident.
func (p *Pool) writeBurst() error {
	var victims []*Frame
	for _, f := range p.frames {
		if f.dirty && f.pins == 0 {
			victims = append(victims, f)
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].ID < victims[b].ID })
	for start := 0; start < len(victims); {
		end := start + 1
		for end < len(victims) && victims[end].ID == victims[end-1].ID+1 {
			end++
		}
		pages := make([][]byte, 0, end-start)
		for _, f := range victims[start:end] {
			pages = append(pages, f.Data)
		}
		if err := p.dev.WriteRun(victims[start].ID, pages); err != nil {
			return err
		}
		for _, f := range victims[start:end] {
			f.dirty = false
		}
		start = end
	}
	return nil
}

// FlushAll writes every dirty page back to disk, batching contiguous page
// IDs into single write calls (DASDBS behaviour at query end / disconnect),
// and clears their dirty bits. Resident pages stay cached.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked(nil)
}

// FlushPages writes back the given pages (dirty or not) immediately,
// grouping contiguous runs into single calls. It models the DASDBS
// "change attribute" page-pool behaviour of §5.3, where each update
// operation allocates a page pool of which all pages are written.
func (p *Pool) FlushPages(ids []disk.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := make(map[disk.PageID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return p.flushLocked(set)
}

// flushLocked writes dirty pages (or exactly the pages in only, when
// non-nil) in contiguous batches.
func (p *Pool) flushLocked(only map[disk.PageID]bool) error {
	var victims []*Frame
	for _, f := range p.frames {
		if only != nil {
			if only[f.ID] {
				victims = append(victims, f)
			}
			continue
		}
		if f.dirty {
			victims = append(victims, f)
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].ID < victims[b].ID })
	for start := 0; start < len(victims); {
		end := start + 1
		for end < len(victims) && victims[end].ID == victims[end-1].ID+1 {
			end++
		}
		pages := make([][]byte, 0, end-start)
		for _, f := range victims[start:end] {
			pages = append(pages, f.Data)
		}
		if err := p.dev.WriteRun(victims[start].ID, pages); err != nil {
			return err
		}
		for _, f := range victims[start:end] {
			f.dirty = false
		}
		start = end
	}
	return nil
}

// Reset flushes all dirty pages and then empties the pool, so the next
// queries start with a cold cache. Returns an error if a page is still
// pinned.
func (p *Pool) Reset() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("buffer: reset with pinned page %d", f.ID)
		}
	}
	if err := p.flushLocked(nil); err != nil {
		return err
	}
	p.frames = make(map[disk.PageID]*Frame, p.capacity)
	p.head, p.tail = nil, nil
	p.clock = nil
	p.hand = 0
	return nil
}

// Contains reports whether the page is resident (test/diagnostic helper).
func (p *Pool) Contains(id disk.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}

// --- replacement policies ---------------------------------------------------

func (p *Pool) insert(f *Frame) {
	switch p.policy {
	case Clock:
		f.ref = true
		p.clock = append(p.clock, f)
	default:
		p.pushFront(f)
	}
}

func (p *Pool) touch(f *Frame) {
	switch p.policy {
	case Clock:
		f.ref = true
	default:
		p.unlink(f)
		p.pushFront(f)
	}
}

func (p *Pool) remove(f *Frame) {
	switch p.policy {
	case Clock:
		for i, c := range p.clock {
			if c == f {
				p.clock = append(p.clock[:i], p.clock[i+1:]...)
				if p.hand > i {
					p.hand--
				}
				if len(p.clock) > 0 {
					p.hand %= len(p.clock)
				} else {
					p.hand = 0
				}
				return
			}
		}
	default:
		p.unlink(f)
	}
}

func (p *Pool) victim() *Frame {
	switch p.policy {
	case Clock:
		if len(p.clock) == 0 {
			return nil
		}
		// Two sweeps suffice: the first clears reference bits, the second
		// must find an unpinned frame if one exists.
		for sweep := 0; sweep < 2*len(p.clock); sweep++ {
			f := p.clock[p.hand]
			p.hand = (p.hand + 1) % len(p.clock)
			if f.pins > 0 {
				continue
			}
			if f.ref {
				f.ref = false
				continue
			}
			return f
		}
		return nil
	default:
		for f := p.tail; f != nil; f = f.prev {
			if f.pins == 0 {
				return f
			}
		}
		return nil
	}
}

func (p *Pool) pushFront(f *Frame) {
	f.prev = nil
	f.next = p.head
	if p.head != nil {
		p.head.prev = f
	}
	p.head = f
	if p.tail == nil {
		p.tail = f
	}
}

func (p *Pool) unlink(f *Frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if p.head == f {
		p.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if p.tail == f {
		p.tail = f.prev
	}
	f.prev, f.next = nil, nil
}
