package buffer

import (
	"errors"
	"testing"

	"complexobj/internal/disk"
	"complexobj/internal/xrand"
)

func newEnv(t *testing.T, capacity int, policy Policy) (*disk.Disk, *Pool) {
	t.Helper()
	d := disk.New(disk.DefaultPageSize)
	return d, New(d, capacity, policy)
}

// mustFix fixes and immediately returns the frame, failing the test on error.
func mustFix(t *testing.T, p *Pool, id disk.PageID) *Frame {
	t.Helper()
	f, err := p.Fix(id)
	if err != nil {
		t.Fatalf("Fix(%d): %v", id, err)
	}
	return f
}

func TestFixReadsOnceThenHits(t *testing.T) {
	d, p := newEnv(t, 4, LRU)
	d.Allocate(2)
	f := mustFix(t, p, 0)
	p.Unfix(0, false)
	mustFix(t, p, 0)
	p.Unfix(0, false)
	if d.Stats().PagesRead != 1 {
		t.Errorf("pages read = %d, want 1", d.Stats().PagesRead)
	}
	if p.Fixes() != 2 || p.Hits() != 1 {
		t.Errorf("fixes=%d hits=%d, want 2/1", p.Fixes(), p.Hits())
	}
	if f.ID != 0 {
		t.Errorf("frame id = %d", f.ID)
	}
}

func TestDirtyWriteBackOnFlush(t *testing.T) {
	d, p := newEnv(t, 4, LRU)
	d.Allocate(1)
	f := mustFix(t, p, 0)
	p.MarkDirty(f)
	f.Data[disk.SysHeaderSize] = 0xAB
	p.Unfix(0, true)
	if d.Stats().PagesWritten != 0 {
		t.Fatal("write happened before flush")
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PagesWritten != 1 || d.Stats().WriteCalls != 1 {
		t.Errorf("flush stats: %v", d.Stats())
	}
	got, _ := d.ReadCopy(0, 1)
	if got[0][disk.SysHeaderSize] != 0xAB {
		t.Error("modification not persisted")
	}
	// Second flush writes nothing: dirty bit cleared.
	before := d.Stats().PagesWritten
	p.FlushAll()
	if d.Stats().PagesWritten != before {
		t.Error("clean page rewritten on second flush")
	}
}

func TestFlushGroupsContiguousRuns(t *testing.T) {
	d, p := newEnv(t, 8, LRU)
	d.Allocate(8)
	for _, id := range []disk.PageID{0, 1, 2, 5, 6} {
		f := mustFix(t, p, id)
		p.MarkDirty(f)
		p.Unfix(id, true)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.PagesWritten != 5 {
		t.Errorf("pages written = %d, want 5", s.PagesWritten)
	}
	if s.WriteCalls != 2 {
		t.Errorf("write calls = %d, want 2 (runs 0-2 and 5-6)", s.WriteCalls)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	d, p := newEnv(t, 2, LRU)
	d.Allocate(3)
	mustFix(t, p, 0)
	p.Unfix(0, false)
	mustFix(t, p, 1)
	p.Unfix(1, false)
	// Touch 0 so 1 becomes LRU.
	mustFix(t, p, 0)
	p.Unfix(0, false)
	mustFix(t, p, 2) // must evict 1
	p.Unfix(2, false)
	if !p.Contains(0) || p.Contains(1) || !p.Contains(2) {
		t.Errorf("LRU evicted wrong page: 0=%v 1=%v 2=%v",
			p.Contains(0), p.Contains(1), p.Contains(2))
	}
}

func TestEvictionWritesDirtyVictim(t *testing.T) {
	d, p := newEnv(t, 1, LRU)
	d.Allocate(2)
	f := mustFix(t, p, 0)
	p.MarkDirty(f)
	f.Data[disk.SysHeaderSize] = 7
	p.Unfix(0, true)
	mustFix(t, p, 1)
	p.Unfix(1, false)
	if d.Stats().PagesWritten != 1 {
		t.Errorf("dirty eviction wrote %d pages, want 1", d.Stats().PagesWritten)
	}
	got, _ := d.ReadCopy(0, 1)
	if got[0][disk.SysHeaderSize] != 7 {
		t.Error("victim content lost")
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	d, p := newEnv(t, 2, LRU)
	d.Allocate(3)
	mustFix(t, p, 0) // stays pinned
	mustFix(t, p, 1)
	p.Unfix(1, false)
	mustFix(t, p, 2) // evicts 1, not pinned 0
	p.Unfix(2, false)
	if !p.Contains(0) {
		t.Fatal("pinned page evicted")
	}
	p.Unfix(0, false)
}

func TestAllPinnedErrors(t *testing.T) {
	d, p := newEnv(t, 1, LRU)
	d.Allocate(2)
	mustFix(t, p, 0)
	if _, err := p.Fix(1); !errors.Is(err, ErrNoFrames) {
		t.Errorf("Fix on exhausted pool err = %v, want ErrNoFrames", err)
	}
	p.Unfix(0, false)
}

func TestUnfixUnknownPage(t *testing.T) {
	_, p := newEnv(t, 2, LRU)
	if err := p.Unfix(9, false); !errors.Is(err, ErrNotFixed) {
		t.Errorf("Unfix(9) err = %v, want ErrNotFixed", err)
	}
}

func TestDoublePinSemantics(t *testing.T) {
	d, p := newEnv(t, 1, LRU)
	d.Allocate(2)
	mustFix(t, p, 0)
	mustFix(t, p, 0)
	p.Unfix(0, false)
	// Still pinned once: cannot evict.
	if _, err := p.Fix(1); !errors.Is(err, ErrNoFrames) {
		t.Errorf("page with remaining pin was evictable: %v", err)
	}
	p.Unfix(0, false)
	mustFix(t, p, 1)
	p.Unfix(1, false)
}

func TestFixRunSingleCallPerContiguousRun(t *testing.T) {
	d, p := newEnv(t, 10, LRU)
	d.Allocate(10)
	ids := []disk.PageID{2, 3, 4, 7, 8}
	frames, err := p.FixRun(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if f.ID != ids[i] {
			t.Errorf("frame %d id = %d, want %d", i, f.ID, ids[i])
		}
		p.Unfix(f.ID, false)
	}
	s := d.Stats()
	if s.ReadCalls != 2 || s.PagesRead != 5 {
		t.Errorf("FixRun: %d calls/%d pages, want 2/5", s.ReadCalls, s.PagesRead)
	}
	if p.Fixes() != 5 {
		t.Errorf("fixes = %d, want 5", p.Fixes())
	}
}

func TestFixRunMixedHitMiss(t *testing.T) {
	d, p := newEnv(t, 10, LRU)
	d.Allocate(4)
	mustFix(t, p, 1)
	p.Unfix(1, false)
	d.ResetStats()
	frames, err := p.FixRun([]disk.PageID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		p.Unfix(f.ID, false)
	}
	s := d.Stats()
	// 1 is resident: misses are 0 and 2-3, i.e. two runs.
	if s.ReadCalls != 2 || s.PagesRead != 3 {
		t.Errorf("mixed FixRun: %d calls/%d pages, want 2/3", s.ReadCalls, s.PagesRead)
	}
}

func TestFixRunDuplicateIDs(t *testing.T) {
	d, p := newEnv(t, 4, LRU)
	d.Allocate(2)
	frames, err := p.FixRun([]disk.PageID{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if frames[0] != frames[1] {
		t.Error("duplicate ids returned distinct frames")
	}
	p.Unfix(0, false)
	p.Unfix(0, false)
	p.Unfix(1, false)
	if d.Stats().PagesRead != 2 {
		t.Errorf("duplicate ids re-read pages: %v", d.Stats())
	}
}

func TestFlushPagesWritesCleanPagesToo(t *testing.T) {
	d, p := newEnv(t, 4, LRU)
	d.Allocate(2)
	mustFix(t, p, 0)
	p.Unfix(0, false) // clean
	if err := p.FlushPages([]disk.PageID{0}); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.PagesWritten != 1 || s.WriteCalls != 1 {
		t.Errorf("FlushPages on clean page: %v (want forced write, page-pool semantics)", s)
	}
}

func TestReset(t *testing.T) {
	d, p := newEnv(t, 4, LRU)
	d.Allocate(2)
	f := mustFix(t, p, 0)
	p.MarkDirty(f)
	f.Data[disk.SysHeaderSize] = 9
	p.Unfix(0, true)
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Errorf("Reset left %d resident pages", p.Len())
	}
	if d.Stats().PagesWritten != 1 {
		t.Error("Reset did not flush dirty page")
	}
	// Refix re-reads from disk.
	before := d.Stats().PagesRead
	mustFix(t, p, 0)
	p.Unfix(0, false)
	if d.Stats().PagesRead != before+1 {
		t.Error("page survived Reset")
	}
}

func TestResetWithPinnedPageFails(t *testing.T) {
	d, p := newEnv(t, 4, LRU)
	d.Allocate(1)
	mustFix(t, p, 0)
	if err := p.Reset(); err == nil {
		t.Error("Reset succeeded with pinned page")
	}
	p.Unfix(0, false)
}

func TestClockEvictsUnreferencedFirst(t *testing.T) {
	d, p := newEnv(t, 3, Clock)
	d.Allocate(4)
	for id := disk.PageID(0); id < 3; id++ {
		mustFix(t, p, id)
		p.Unfix(id, false)
	}
	// Re-reference 0 and 1 so their ref bits are set again after the
	// initial insertion sweep; page 2 keeps only its insertion reference.
	mustFix(t, p, 0)
	p.Unfix(0, false)
	mustFix(t, p, 1)
	p.Unfix(1, false)
	mustFix(t, p, 3)
	p.Unfix(3, false)
	// Clock clears ref bits in a first sweep, so the exact victim depends
	// on hand position; the key invariant is that exactly one of the old
	// pages was evicted and the pool works.
	resident := 0
	for id := disk.PageID(0); id < 4; id++ {
		if p.Contains(id) {
			resident++
		}
	}
	if resident != 3 {
		t.Errorf("resident=%d, want 3", resident)
	}
	if !p.Contains(3) {
		t.Error("newly fixed page not resident")
	}
}

func TestClockAllPinned(t *testing.T) {
	d, p := newEnv(t, 2, Clock)
	d.Allocate(3)
	mustFix(t, p, 0)
	mustFix(t, p, 1)
	if _, err := p.Fix(2); !errors.Is(err, ErrNoFrames) {
		t.Errorf("clock with all pinned: %v", err)
	}
	p.Unfix(0, false)
	p.Unfix(1, false)
}

// Property-style stress: random fix/unfix traffic against a shadow model of
// page contents, under both policies, with a small pool forcing constant
// eviction. Verifies no content is ever lost or mixed up.
func TestRandomTrafficPreservesContent(t *testing.T) {
	for _, pol := range []Policy{LRU, Clock} {
		t.Run(pol.String(), func(t *testing.T) {
			d := disk.New(disk.DefaultPageSize)
			p := New(d, 5, pol)
			const npages = 40
			d.Allocate(npages)
			shadow := make([]byte, npages)
			rng := xrand.New(99)
			for op := 0; op < 5000; op++ {
				id := disk.PageID(rng.Intn(npages))
				f, err := p.Fix(id)
				if err != nil {
					t.Fatalf("op %d fix(%d): %v", op, id, err)
				}
				if got := f.Data[disk.SysHeaderSize]; got != shadow[id] {
					t.Fatalf("op %d page %d content %d, want %d", op, id, got, shadow[id])
				}
				dirty := rng.Bool(0.3)
				if dirty {
					shadow[id]++
					p.MarkDirty(f)
					f.Data[disk.SysHeaderSize] = shadow[id]
				}
				if err := p.Unfix(id, dirty); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for id := 0; id < npages; id++ {
				got, _ := d.ReadCopy(disk.PageID(id), 1)
				if got[0][disk.SysHeaderSize] != shadow[id] {
					t.Fatalf("final page %d content %d, want %d", id, got[0][disk.SysHeaderSize], shadow[id])
				}
			}
		})
	}
}

func TestResetStats(t *testing.T) {
	d, p := newEnv(t, 2, LRU)
	d.Allocate(1)
	mustFix(t, p, 0)
	p.Unfix(0, false)
	p.ResetStats()
	if p.Fixes() != 0 || p.Hits() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestWriteBurstBatchesDirtyPages(t *testing.T) {
	// Fill a small pool with interleaved dirty pages, then trigger one
	// eviction: the burst must write every unpinned dirty page, grouping
	// contiguous IDs into single calls.
	d, p := newEnv(t, 4, LRU)
	d.Allocate(8)
	for _, id := range []disk.PageID{0, 1, 2, 3} {
		f := mustFix(t, p, id)
		p.MarkDirty(f)
		f.Data[disk.SysHeaderSize] = byte(id)
		p.Unfix(id, true)
	}
	d.ResetStats()
	mustFix(t, p, 5) // overflow: victim is dirty page 0
	p.Unfix(5, false)
	s := d.Stats()
	if s.PagesWritten != 4 {
		t.Errorf("burst wrote %d pages, want all 4 dirty", s.PagesWritten)
	}
	if s.WriteCalls != 1 {
		t.Errorf("burst used %d calls, want 1 (contiguous run 0-3)", s.WriteCalls)
	}
	// A second eviction finds only clean victims: no more writes.
	mustFix(t, p, 6)
	p.Unfix(6, false)
	if d.Stats().PagesWritten != 4 {
		t.Error("clean eviction wrote pages")
	}
	// Content survived.
	got, _ := d.ReadCopy(2, 1)
	if got[0][disk.SysHeaderSize] != 2 {
		t.Error("burst lost content")
	}
}

func TestWriteBurstSkipsPinnedPages(t *testing.T) {
	d, p := newEnv(t, 3, LRU)
	d.Allocate(5)
	fp := mustFix(t, p, 0) // pinned and dirty
	p.MarkDirty(fp)
	fp.Data[disk.SysHeaderSize] = 9
	f1 := mustFix(t, p, 1)
	p.MarkDirty(f1)
	f1.Data[disk.SysHeaderSize] = 1
	p.Unfix(1, true)
	mustFix(t, p, 2)
	p.Unfix(2, false)
	d.ResetStats()
	mustFix(t, p, 3) // evicts; burst writes page 1 only (0 pinned)
	p.Unfix(3, false)
	if w := d.Stats().PagesWritten; w != 1 {
		t.Errorf("burst wrote %d pages, want 1 (pinned page must be skipped)", w)
	}
	p.Unfix(0, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadCopy(0, 1)
	if got[0][disk.SysHeaderSize] != 9 {
		t.Error("pinned dirty page lost")
	}
}

func TestFixRunErrorDoesNotLeakPins(t *testing.T) {
	d := disk.New(disk.DefaultPageSize)
	if _, err := d.Allocate(2); err != nil {
		t.Fatal(err)
	}
	p := New(d, 4, LRU)
	// Page 0 resident and unpinned; page 99 is past the end of the device,
	// so the batch fails after the hit pass already pinned page 0.
	if _, err := p.Fix(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unfix(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FixRun([]disk.PageID{0, 99}); err == nil {
		t.Fatal("FixRun with out-of-range page succeeded")
	}
	// The failed FixRun must have unwound its pin on page 0: a Reset (which
	// refuses while any page is pinned) must succeed.
	if err := p.Reset(); err != nil {
		t.Errorf("Reset after failed FixRun: %v (pin leaked)", err)
	}
}
