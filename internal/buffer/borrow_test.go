package buffer

import (
	"bytes"
	"errors"
	"testing"

	"complexobj/internal/disk"
)

// TestBufferBorrowsSharedPages pins the zero-copy miss path on every
// stable backend: a fixed frame aliases backend memory (Borrowed), the
// pool's borrow counter moves, and the bytes match what a copying read
// would have produced.
func TestBufferBorrowsSharedPages(t *testing.T) {
	for name, newDev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev()
			defer d.Close()
			if _, err := d.Allocate(8); err != nil {
				t.Fatal(err)
			}
			want := bytes.Repeat([]byte{0x3C}, disk.DefaultPageSize)
			if err := d.WriteRun(5, [][]byte{want}); err != nil {
				t.Fatal(err)
			}
			p := New(d, 4, LRU)
			f, err := p.Fix(5)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Borrowed() {
				t.Fatalf("%s: miss did not borrow from a stable backend", name)
			}
			if !bytes.Equal(f.Data, want) {
				t.Error("borrowed frame bytes differ from the device page")
			}
			if p.Borrows() != 1 {
				t.Errorf("Borrows() = %d, want 1", p.Borrows())
			}
			// A cache hit must not count another borrow.
			if err := p.Unfix(5, false); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Fix(5); err != nil {
				t.Fatal(err)
			}
			if p.Borrows() != 1 {
				t.Errorf("Borrows() after hit = %d, want 1", p.Borrows())
			}
			if err := p.Unfix(5, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMarkDirtyPromotesBorrowedFrame pins the copy-on-first-write
// contract: MarkDirty on a borrowed frame replaces Data with a private
// copy, later writes land only in that copy, and the backend bytes stay
// untouched until the flush writes them back through the device.
func TestMarkDirtyPromotesBorrowedFrame(t *testing.T) {
	for name, newDev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev()
			defer d.Close()
			if _, err := d.Allocate(4); err != nil {
				t.Fatal(err)
			}
			orig := bytes.Repeat([]byte{0x11}, disk.DefaultPageSize)
			if err := d.WriteRun(2, [][]byte{orig}); err != nil {
				t.Fatal(err)
			}
			p := New(d, 4, LRU)
			f, err := p.Fix(2)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Borrowed() {
				t.Fatal("frame not borrowed")
			}
			shared := f.Data
			p.MarkDirty(f)
			if f.Borrowed() {
				t.Fatal("MarkDirty left the frame borrowed")
			}
			if &f.Data[0] == &shared[0] {
				t.Fatal("MarkDirty did not replace the borrowed slice")
			}
			if !bytes.Equal(f.Data, orig) {
				t.Fatal("promotion lost the page content")
			}
			// Mutate the private copy: the backend page and the previously
			// borrowed slice must both still hold the original bytes.
			for i := range f.Data {
				f.Data[i] = 0xEE
			}
			if !bytes.Equal(shared, orig) {
				t.Error("write after promotion leaked into backend memory")
			}
			onDisk, err := d.ReadCopy(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(onDisk[0], orig) {
				t.Error("device page changed before flush")
			}
			if err := p.Unfix(2, true); err != nil {
				t.Fatal(err)
			}
			if err := p.FlushAll(); err != nil {
				t.Fatal(err)
			}
			onDisk, err = d.ReadCopy(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(onDisk[0], bytes.Repeat([]byte{0xEE}, disk.DefaultPageSize)) {
				t.Error("flush did not write the promoted copy back")
			}
			// MarkDirty on an already-owned frame is idempotent: no second
			// promotion, same slice.
			f2, err := p.Fix(2)
			if err != nil {
				t.Fatal(err)
			}
			p.MarkDirty(f2)
			data := f2.Data
			p.MarkDirty(f2)
			if &f2.Data[0] != &data[0] {
				t.Error("second MarkDirty replaced the owned slice")
			}
			if err := p.Unfix(2, true); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDirtyUnfixOfBorrowedFrameFails pins the guard that turns a missed
// MarkDirty conversion into a loud error instead of silent backend
// corruption: dirty-unfixing a still-borrowed frame is refused, and the
// frame survives to be promoted properly.
func TestDirtyUnfixOfBorrowedFrameFails(t *testing.T) {
	for name, newDev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev()
			defer d.Close()
			if _, err := d.Allocate(2); err != nil {
				t.Fatal(err)
			}
			p := New(d, 2, LRU)
			f, err := p.Fix(1)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Borrowed() {
				t.Fatal("frame not borrowed")
			}
			if err := p.Unfix(1, true); !errors.Is(err, ErrBorrowedWrite) {
				t.Fatalf("dirty unfix of borrowed frame: %v, want ErrBorrowedWrite", err)
			}
			// The failed unfix still released the pin; the proper sequence
			// works afterwards.
			f, err = p.Fix(1)
			if err != nil {
				t.Fatal(err)
			}
			p.MarkDirty(f)
			if err := p.Unfix(1, true); err != nil {
				t.Fatal(err)
			}
			if err := p.FlushAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiscardDropsBorrowsBeforeReset pins the view-recycling order: a
// pool full of borrowed frames can Discard (no write-back, borrows
// released) and the device can then ResetView without any frame still
// aliasing recycled overlay images.
func TestDiscardDropsBorrowsBeforeReset(t *testing.T) {
	base := disk.NewBaseArena(make([]byte, 8*disk.DefaultPageSize))
	d, err := disk.Open(disk.DefaultPageSize, disk.NewCOWBackend(base, disk.DefaultPageSize))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	p := New(d, 4, LRU)
	// Materialize one overlay page and borrow two base pages.
	f, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	p.MarkDirty(f)
	f.Data[100] = 0x77
	if err := p.Unfix(0, true); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []disk.PageID{1, 2} {
		if _, err := p.Fix(id); err != nil {
			t.Fatal(err)
		}
		if err := p.Unfix(id, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Discard(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("%d frames resident after Discard", p.Len())
	}
	if !d.ResetView() {
		t.Fatal("ResetView unsupported on a cow device")
	}
	// The recycled view reads pristine base bytes again.
	f, err = p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[100] != 0 {
		t.Error("reset view still shows the previous overlay write")
	}
	if err := p.Unfix(0, false); err != nil {
		t.Fatal(err)
	}
}
