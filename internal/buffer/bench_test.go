package buffer

import (
	"testing"

	"complexobj/internal/disk"
)

// benchPool builds a device with n pages behind a pool of capacity frames.
func benchPool(b *testing.B, pages, capacity int) (*disk.Disk, *Pool) {
	b.Helper()
	d := disk.New(disk.DefaultPageSize)
	if _, err := d.Allocate(pages); err != nil {
		b.Fatal(err)
	}
	return d, New(d, capacity, LRU)
}

// BenchmarkFixHit measures the steady-state cache-hit path: the page is
// resident, so a fix is pure bookkeeping. This is the hottest operation of
// the simulation (every tuple access goes through it) and the target of the
// zero-allocation requirement.
func BenchmarkFixHit(b *testing.B) {
	_, p := benchPool(b, 8, 8)
	if _, err := p.Fix(3); err != nil {
		b.Fatal(err)
	}
	if err := p.Unfix(3, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := p.Fix(3)
		if err != nil {
			b.Fatal(err)
		}
		_ = f
		if err := p.Unfix(3, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixMissEvict measures the cold path: every fix misses and evicts
// a clean victim, so each iteration is one disk read plus one replacement
// decision. Buffer recycling should make this allocation-free in steady
// state as well.
func BenchmarkFixMissEvict(b *testing.B) {
	const pages = 256
	_, p := benchPool(b, pages, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := disk.PageID(i % pages)
		f, err := p.Fix(id)
		if err != nil {
			b.Fatal(err)
		}
		_ = f
		if err := p.Unfix(id, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixRunMiss measures the multi-page object read path (DSM whole
// object transfer): an 8-page contiguous run fixed in one call, all misses.
func BenchmarkFixRunMiss(b *testing.B) {
	const pages = 512
	const run = 8
	_, p := benchPool(b, pages, 32)
	ids := make([]disk.PageID, run)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := disk.PageID((i * run) % (pages - run))
		for j := range ids {
			ids[j] = start + disk.PageID(j)
		}
		frames, err := p.FixRun(ids)
		if err != nil {
			b.Fatal(err)
		}
		_ = frames
		for _, id := range ids {
			if err := p.Unfix(id, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDirtyEvictChurn measures the overflow write-back path: a working
// set larger than the pool where every page is dirtied, so evictions trigger
// write bursts — the §5.4 cache-overflow regime of queries 2b/3b.
func BenchmarkDirtyEvictChurn(b *testing.B) {
	const pages = 256
	_, p := benchPool(b, pages, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := disk.PageID(i % pages)
		f, err := p.Fix(id)
		if err != nil {
			b.Fatal(err)
		}
		p.MarkDirty(f)
		if err := p.Unfix(id, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlushAll measures the disconnect flush with many dirty pages
// resident: the path that formerly scanned and re-sorted every frame.
func BenchmarkFlushAll(b *testing.B) {
	const pages = 1024
	_, p := benchPool(b, pages, pages)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for id := 0; id < pages; id += 4 {
			f, err := p.Fix(disk.PageID(id))
			if err != nil {
				b.Fatal(err)
			}
			p.MarkDirty(f)
			if err := p.Unfix(disk.PageID(id), true); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := p.FlushAll(); err != nil {
			b.Fatal(err)
		}
	}
}
