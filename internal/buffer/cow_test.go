package buffer

import (
	"bytes"
	"testing"

	"complexobj/internal/disk"
)

// TestPoolObservesCOWOverlay pins the pool ↔ COW-backend contract: a
// frame dirtied and flushed over a copy-on-write device lands in the
// engine's private overlay, and every later fix — including after a Drop
// that recycles the frame — observes the overlay image, never the stale
// shared base. The base itself must stay byte-identical throughout.
func TestPoolObservesCOWOverlay(t *testing.T) {
	const ps = disk.DefaultPageSize
	baseData := make([]byte, 8*ps)
	for i := range baseData {
		baseData[i] = byte(i % 37)
	}
	pristine := append([]byte(nil), baseData...)
	base := disk.NewBaseArena(baseData)

	d, err := disk.Open(ps, disk.NewCOWBackend(base, ps))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	p := New(d, 4, LRU)

	// Read a base page through the pool, modify it in the frame, flush.
	f, err := p.Fix(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Data, pristine[3*ps:4*ps]) {
		t.Fatal("fix does not read through to the base")
	}
	p.MarkDirty(f)
	copy(f.Data, "overlay image")
	if err := p.Unfix(3, true); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Drop the frame: the next fix must re-read from the device and see
	// the overlay write, not the base.
	if err := p.Drop([]disk.PageID{3}); err != nil {
		t.Fatal(err)
	}
	f, err = p.Fix(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Data[:13]) != "overlay image" {
		t.Fatal("re-fixed frame does not observe the flushed overlay write")
	}
	if err := p.Unfix(3, false); err != nil {
		t.Fatal(err)
	}

	// Dropping frames of clean base pages recycles memory without
	// touching base or counters.
	if _, err := p.Fix(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Unfix(1, false); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if err := p.Drop([]disk.PageID{1}); err != nil {
		t.Fatal(err)
	}
	if after := d.Stats(); after != before {
		t.Errorf("Drop of a base page moved counters: %+v -> %+v", before, after)
	}

	if !bytes.Equal(base.Bytes(), pristine) {
		t.Fatal("pool traffic mutated the shared base")
	}
	st, ok := disk.COWStatsOf(d.Backend())
	if !ok || st.OverlayPages != 1 {
		t.Fatalf("overlay stats after one dirtied page: %+v (ok=%v)", st, ok)
	}
}
