package buffer

import (
	"fmt"
	"path/filepath"
	"testing"

	"complexobj/internal/disk"
)

// testDevices builds one fresh device per backend kind, so every alloc
// budget below is pinned against the memory arena, the mmap'ed file arena
// and the copy-on-write overlay alike: the recycled-frame read path must
// stay allocation-free no matter where the page bytes live. The COW
// device reads through a pre-populated shared base, the configuration the
// parallel matrix runs in steady state (reads never materialize overlay
// pages, re-writes of materialized pages allocate nothing).
func testDevices(t *testing.T) map[string]func() *disk.Disk {
	t.Helper()
	dir := t.TempDir()
	n := 0
	return map[string]func() *disk.Disk{
		"mem": func() *disk.Disk { return disk.New(disk.DefaultPageSize) },
		"file": func() *disk.Disk {
			n++
			b, err := disk.OpenFileBackend(filepath.Join(dir, fmt.Sprintf("arena%d", n)), disk.FileBackendOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return disk.NewWithBackend(disk.DefaultPageSize, b)
		},
		"cow": func() *disk.Disk {
			base := disk.NewBaseArena(make([]byte, 256*disk.DefaultPageSize))
			d, err := disk.Open(disk.DefaultPageSize, disk.NewCOWBackend(base, disk.DefaultPageSize))
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

// TestFixHitZeroAllocs pins the allocation budget of the cache-hit fix —
// the hottest operation of the simulation. The dense PageID index and the
// intrusive LRU list make it allocation-free; a regression here slows every
// experiment.
func TestFixHitZeroAllocs(t *testing.T) {
	for name, newDev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev()
			defer d.Close()
			if _, err := d.Allocate(4); err != nil {
				t.Fatal(err)
			}
			p := New(d, 4, LRU)
			if _, err := p.Fix(2); err != nil {
				t.Fatal(err)
			}
			if err := p.Unfix(2, false); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(1000, func() {
				f, err := p.Fix(2)
				if err != nil {
					t.Fatal(err)
				}
				_ = f
				if err := p.Unfix(2, false); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("fix-hit path allocates %.1f objects per op, want 0", allocs)
			}
		})
	}
}

// TestFixMissSteadyStateZeroAllocs asserts that the miss/evict cycle
// recycles frame buffers and Frame structs through the free-lists: once the
// pool has warmed up, churning a working set larger than the pool allocates
// nothing per fix — against either backend, since ReadRun always lands in
// recycled frame memory.
func TestFixMissSteadyStateZeroAllocs(t *testing.T) {
	const pages = 64
	for name, newDev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev()
			defer d.Close()
			if _, err := d.Allocate(pages); err != nil {
				t.Fatal(err)
			}
			p := New(d, 8, LRU)
			// Warm up: touch every page once so index, free-lists and scratch
			// buffers reach steady-state capacity.
			for i := 0; i < pages; i++ {
				if _, err := p.Fix(disk.PageID(i)); err != nil {
					t.Fatal(err)
				}
				if err := p.Unfix(disk.PageID(i), false); err != nil {
					t.Fatal(err)
				}
			}
			next := 0
			allocs := testing.AllocsPerRun(1000, func() {
				id := disk.PageID(next % pages)
				next++
				f, err := p.Fix(id)
				if err != nil {
					t.Fatal(err)
				}
				_ = f
				if err := p.Unfix(id, false); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state miss path allocates %.1f objects per op, want 0", allocs)
			}
		})
	}
}

// TestFlushZeroAllocs asserts the dirty-list flush does not allocate once
// scratch space has warmed up: no full-frame scan, no fresh victim slices.
func TestFlushZeroAllocs(t *testing.T) {
	const pages = 32
	for name, newDev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev()
			defer d.Close()
			if _, err := d.Allocate(pages); err != nil {
				t.Fatal(err)
			}
			p := New(d, pages, LRU)
			dirtyAll := func() {
				for i := 0; i < pages; i++ {
					f, err := p.Fix(disk.PageID(i))
					if err != nil {
						t.Fatal(err)
					}
					p.MarkDirty(f)
					if err := p.Unfix(disk.PageID(i), true); err != nil {
						t.Fatal(err)
					}
				}
			}
			dirtyAll()
			if err := p.FlushAll(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				dirtyAll()
				if err := p.FlushAll(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("flush cycle allocates %.1f objects per op, want 0", allocs)
			}
		})
	}
}

// opaqueBackend hides the optional capabilities of the backend it wraps:
// interface embedding promotes only Backend's method set, so the wrapper
// is neither a flat backend nor a disk.StablePager even when the inner
// backend is. Tests use it to force the pool onto the buffered copy path.
type opaqueBackend struct{ disk.Backend }

// TestBufferMemoryRecycled asserts eviction returns page buffers to the
// free-list instead of abandoning them to the garbage collector: after
// churning many pages through a small pool, the pool should not be holding
// more distinct page buffers than its capacity plus the free-list. The
// backend is wrapped opaque so every load actually takes a pool buffer —
// zero-copy backends hand out no buffers at all (TestBufferBorrowsSharedPages).
func TestBufferMemoryRecycled(t *testing.T) {
	const pages = 128
	const capacity = 4
	d := disk.NewWithBackend(disk.DefaultPageSize, opaqueBackend{disk.NewMemBackend()})
	if _, err := d.Allocate(pages); err != nil {
		t.Fatal(err)
	}
	p := New(d, capacity, LRU)
	seen := make(map[*byte]bool)
	for round := 0; round < 3; round++ {
		for i := 0; i < pages; i++ {
			f, err := p.Fix(disk.PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			if f.Borrowed() {
				t.Fatal("opaque backend produced a borrowed frame")
			}
			seen[&f.Data[0]] = true
			if err := p.Unfix(disk.PageID(i), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every eviction recycles its buffer, so the distinct buffers ever
	// handed out stay bounded by the pool footprint (capacity resident +
	// briefly-free spares), not by the 3*128 page visits.
	if len(seen) > 2*capacity {
		t.Errorf("pool handed out %d distinct page buffers for capacity %d; recycling broken", len(seen), capacity)
	}
}

// TestDropDiscardsWithoutIO pins Drop's contract: resident frames leave
// the pool with no disk traffic and no counter movement, dirty or not.
func TestDropDiscardsWithoutIO(t *testing.T) {
	d := disk.New(disk.DefaultPageSize)
	if _, err := d.Allocate(4); err != nil {
		t.Fatal(err)
	}
	p := New(d, 4, LRU)
	for i := 0; i < 3; i++ {
		f, err := p.Fix(disk.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			p.MarkDirty(f) // page 1 dirty
		}
		if err := p.Unfix(disk.PageID(i), i == 1); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats()
	if err := p.Drop([]disk.PageID{0, 1, 3}); err != nil { // 3 is non-resident
		t.Fatal(err)
	}
	if after := d.Stats(); after != before {
		t.Errorf("Drop moved device counters: %+v -> %+v", before, after)
	}
	if p.Contains(0) || p.Contains(1) {
		t.Error("dropped pages still resident")
	}
	if !p.Contains(2) {
		t.Error("unrelated page evicted by Drop")
	}
	// A dropped dirty page must not resurface at the next flush.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats(); got.PagesWritten != 0 {
		t.Errorf("dropped dirty page written back: %+v", got)
	}
	// Dropping a pinned page is refused.
	if _, err := p.Fix(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Drop([]disk.PageID{2}); err == nil {
		t.Error("Drop of pinned page succeeded")
	}
	if err := p.Unfix(2, false); err != nil {
		t.Fatal(err)
	}
}
