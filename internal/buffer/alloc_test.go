package buffer

import (
	"testing"

	"complexobj/internal/disk"
)

// TestFixHitZeroAllocs pins the allocation budget of the cache-hit fix —
// the hottest operation of the simulation. The dense PageID index and the
// intrusive LRU list make it allocation-free; a regression here slows every
// experiment.
func TestFixHitZeroAllocs(t *testing.T) {
	d := disk.New(disk.DefaultPageSize)
	if _, err := d.Allocate(4); err != nil {
		t.Fatal(err)
	}
	p := New(d, 4, LRU)
	if _, err := p.Fix(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Unfix(2, false); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		f, err := p.Fix(2)
		if err != nil {
			t.Fatal(err)
		}
		_ = f
		if err := p.Unfix(2, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("fix-hit path allocates %.1f objects per op, want 0", allocs)
	}
}

// TestFixMissSteadyStateZeroAllocs asserts that the miss/evict cycle
// recycles frame buffers and Frame structs through the free-lists: once the
// pool has warmed up, churning a working set larger than the pool allocates
// nothing per fix.
func TestFixMissSteadyStateZeroAllocs(t *testing.T) {
	const pages = 64
	d := disk.New(disk.DefaultPageSize)
	if _, err := d.Allocate(pages); err != nil {
		t.Fatal(err)
	}
	p := New(d, 8, LRU)
	// Warm up: touch every page once so index, free-lists and scratch
	// buffers reach steady-state capacity.
	for i := 0; i < pages; i++ {
		if _, err := p.Fix(disk.PageID(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.Unfix(disk.PageID(i), false); err != nil {
			t.Fatal(err)
		}
	}
	next := 0
	allocs := testing.AllocsPerRun(1000, func() {
		id := disk.PageID(next % pages)
		next++
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = f
		if err := p.Unfix(id, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state miss path allocates %.1f objects per op, want 0", allocs)
	}
}

// TestFlushZeroAllocs asserts the dirty-list flush does not allocate once
// scratch space has warmed up: no full-frame scan, no fresh victim slices.
func TestFlushZeroAllocs(t *testing.T) {
	const pages = 32
	d := disk.New(disk.DefaultPageSize)
	if _, err := d.Allocate(pages); err != nil {
		t.Fatal(err)
	}
	p := New(d, pages, LRU)
	dirtyAll := func() {
		for i := 0; i < pages; i++ {
			if _, err := p.Fix(disk.PageID(i)); err != nil {
				t.Fatal(err)
			}
			if err := p.Unfix(disk.PageID(i), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	dirtyAll()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dirtyAll()
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("flush cycle allocates %.1f objects per op, want 0", allocs)
	}
}

// TestBufferMemoryRecycled asserts eviction returns page buffers to the
// free-list instead of abandoning them to the garbage collector: after
// churning many pages through a small pool, the pool should not be holding
// more distinct page buffers than its capacity plus the free-list.
func TestBufferMemoryRecycled(t *testing.T) {
	const pages = 128
	const capacity = 4
	d := disk.New(disk.DefaultPageSize)
	if _, err := d.Allocate(pages); err != nil {
		t.Fatal(err)
	}
	p := New(d, capacity, LRU)
	seen := make(map[*byte]bool)
	for round := 0; round < 3; round++ {
		for i := 0; i < pages; i++ {
			f, err := p.Fix(disk.PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			seen[&f.Data[0]] = true
			if err := p.Unfix(disk.PageID(i), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every eviction recycles its buffer, so the distinct buffers ever
	// handed out stay bounded by the pool footprint (capacity resident +
	// briefly-free spares), not by the 3*128 page visits.
	if len(seen) > 2*capacity {
		t.Errorf("pool handed out %d distinct page buffers for capacity %d; recycling broken", len(seen), capacity)
	}
}
