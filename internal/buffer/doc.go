// Package buffer implements the database cache of the simulated DASDBS
// installation: a bounded pool of page frames with fix/unfix (pin) semantics.
//
// The paper's measurements hinge on three behaviours of this component:
//
//   - buffer fixes are counted (Table 6 uses them as a CPU-load indicator),
//   - pages are read from disk only on a fix miss, with contiguous multi-page
//     requests served by a single I/O call (Table 5),
//   - dirty pages are written back either when the query finishes
//     ("database disconnect") or when the pool overflows, which is why
//     writes batch many pages per call (§5.2) and why query 2b/3b degrade
//     once the 1200-page cache overflows (§5.4, Figure 6).
//
// The implementation is built for throughput, because the experiment
// harness funnels every simulated tuple access through this type:
//
//   - residency lookup is a dense slice indexed by PageID (page IDs are
//     allocated contiguously by the device), not a hash map;
//   - evicted frames return their page buffer and their Frame struct to
//     free-lists, so steady-state misses allocate nothing and the cache
//     never holds more page memory than its capacity;
//   - dirty frames sit on an intrusive doubly-linked dirty list, so flushes
//     and overflow write bursts only visit the dirty subset instead of
//     scanning (and re-sorting) every resident frame.
//
// None of this changes the paper-visible accounting: fixes, hits, I/O calls
// and page transfers are counted exactly as before.
//
// # Pin and ownership rules
//
// A Frame (and its Data slice) is valid only while the caller holds a pin
// on it: Fix/FixRun pin, Unfix releases, and an unpinned frame may be
// evicted at any time with its memory recycled for another page. Callers
// therefore must not retain Frame pointers or Data slices across an
// Unfix. The dirty flag travels with Unfix (the caller declares the
// modification when releasing the pin); dirty frames are written back on
// flush or overflow, never while pinned by the eviction path. Drop
// discards resident frames without write-back — the cache-coherence hook
// for page recycling — and refuses pinned pages. Discard empties the
// whole pool without write-back (Reset's flushing counterpart) for view
// recycling, where the device underneath is about to be reset to a
// pristine shared base; evicted frame structs and page buffers land on
// free lists either way, so a recycled engine's next request allocates
// nothing on the buffer hot path.
//
// # Borrowed frames and the write contract
//
// Over a backend with the disk.StablePager capability, a fix miss does
// not copy the page at all: the frame's Data aliases backend memory
// directly (a base-arena page or a materialized overlay image), and the
// frame is marked borrowed. Over any other backend the frame holds a
// private copy as before. Both cases are reached through the same
// Fix/FixRun calls and count the same fixes, misses, I/O calls and page
// transfers — zero-copy is invisible to the paper's accounting.
//
// Borrowing shifts one obligation onto writers: a borrowed Data slice is
// shared, possibly with every sibling view of the same frozen base, so it
// must never be written through. The pool enforces copy-on-first-write at
// the frame level:
//
//   - MarkDirty(f) promotes a borrowed frame — Data is replaced by a
//     private copy of the page — and marks it dirty. On an already-owned
//     frame it is idempotent and merely marks dirty. Writers call it
//     BEFORE the first mutation and re-derive any pointers into f.Data
//     afterwards, since promotion replaces the slice.
//   - Unfix(id, dirty=true) on a still-borrowed frame is refused with
//     ErrBorrowedWrite (the pin is still released). This turns a writer
//     that skipped MarkDirty into a loud test failure instead of silent
//     corruption of the shared base.
//
// Eviction, Drop, Discard and view recycling simply forget a borrowed
// slice (it belongs to the backend, not the pool's buffer free-list);
// the store layer drops all borrows via Discard before resetting the
// device underneath, so no frame outlives the memory it aliases. The
// pool itself is safe for concurrent use via one mutex, but the harness
// gives every worker a private engine, so the mutex is uncontended on
// the hot path.
package buffer
