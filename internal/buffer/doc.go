// Package buffer implements the database cache of the simulated DASDBS
// installation: a bounded pool of page frames with fix/unfix (pin) semantics.
//
// The paper's measurements hinge on three behaviours of this component:
//
//   - buffer fixes are counted (Table 6 uses them as a CPU-load indicator),
//   - pages are read from disk only on a fix miss, with contiguous multi-page
//     requests served by a single I/O call (Table 5),
//   - dirty pages are written back either when the query finishes
//     ("database disconnect") or when the pool overflows, which is why
//     writes batch many pages per call (§5.2) and why query 2b/3b degrade
//     once the 1200-page cache overflows (§5.4, Figure 6).
//
// The implementation is built for throughput, because the experiment
// harness funnels every simulated tuple access through this type:
//
//   - residency lookup is a dense slice indexed by PageID (page IDs are
//     allocated contiguously by the device), not a hash map;
//   - evicted frames return their page buffer and their Frame struct to
//     free-lists, so steady-state misses allocate nothing and the cache
//     never holds more page memory than its capacity;
//   - dirty frames sit on an intrusive doubly-linked dirty list, so flushes
//     and overflow write bursts only visit the dirty subset instead of
//     scanning (and re-sorting) every resident frame.
//
// None of this changes the paper-visible accounting: fixes, hits, I/O calls
// and page transfers are counted exactly as before.
//
// # Pin and ownership rules
//
// A Frame (and its Data slice) is valid only while the caller holds a pin
// on it: Fix/FixRun pin, Unfix releases, and an unpinned frame may be
// evicted at any time with its memory recycled for another page. Callers
// therefore must not retain Frame pointers or Data slices across an
// Unfix. The dirty flag travels with Unfix (the caller declares the
// modification when releasing the pin); dirty frames are written back on
// flush or overflow, never while pinned by the eviction path. Drop
// discards resident frames without write-back — the cache-coherence hook
// for page recycling — and refuses pinned pages. Discard empties the
// whole pool without write-back (Reset's flushing counterpart) for view
// recycling, where the device underneath is about to be reset to a
// pristine shared base; evicted frame structs and page buffers land on
// free lists either way, so a recycled engine's next request allocates
// nothing on the buffer hot path.
//
// Frames hold private copies of page bytes (filled by the device's
// ReadRun), never aliases of backend memory. That makes the pool
// backend-agnostic: a frame dirtied and flushed over a copy-on-write
// backend lands in the engine's private overlay, and a re-fix observes
// that overlay through the ordinary read path. The pool itself is safe
// for concurrent use via one mutex, but the harness gives every worker a
// private engine, so the mutex is uncontended on the hot path.
package buffer
