package xrand

// Source is a splitmix64 pseudo random generator. The zero value is a valid
// generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next pseudo random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo random int in [0, n). It panics when n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// modulo bias for n << 2^64 is far below the sampling noise of the
	// experiments, but we still use the high bits which are the strongest.
	return int((s.Uint64() >> 11) % uint64(n))
}

// Float64 returns a pseudo random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Fork derives an independent child source; useful to give each experiment
// phase its own stream so that adding draws to one phase does not perturb
// another.
func (s *Source) Fork() *Source {
	return &Source{state: s.Uint64() ^ 0xd1b54a32d192ed03}
}

// Mix derives a well-distributed seed from a base seed and a stream
// identifier. Two streams with different ids are statistically independent
// even for adjacent ids, so callers can key streams by (seed, index) —
// the benchmark generator uses this to draw each station's structure and
// its sightseeings independently, which keeps the object graph identical
// across the Figure 5 object-size sweep.
func Mix(seed, stream uint64) uint64 {
	z := seed ^ 0xa0761d6478bd642f
	z += 0x9e3779b97f4a7c15 * (stream + 1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Perm returns a pseudo random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
