// Package xrand provides a small deterministic random source used by the
// benchmark generator and the experiment harness. The stdlib math/rand is
// avoided on purpose: its generator changed across Go releases, and this
// repository promises bit-for-bit reproducible experiment output for a
// given seed. xrand implements splitmix64, which is trivially portable.
package xrand
