package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverge at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) produced only %d distinct values over 10000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %f, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.8) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.8) > 0.01 {
		t.Errorf("Bool(0.8) hit rate = %f", p)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Fork()
	// Child must not replay the parent stream.
	p1 := parent.Uint64()
	c1 := child.Uint64()
	if p1 == c1 {
		t.Error("fork replays parent stream")
	}
	// Forking at the same parent state must be deterministic.
	p2 := New(5)
	c2 := p2.Fork()
	if c2.Uint64() != c1 {
		t.Error("fork is not deterministic")
	}
}

func TestPerm(t *testing.T) {
	s := New(9)
	p := s.Perm(20)
	if len(p) != 20 {
		t.Fatalf("Perm(20) length %d", len(p))
	}
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(13)
	counts := make([]int, 5)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[s.Perm(5)[0]]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)/n-0.2) > 0.01 {
			t.Errorf("Perm(5)[0]=%d frequency %f, want ~0.2", v, float64(c)/n)
		}
	}
}
