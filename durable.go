package complexobj

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"complexobj/internal/disk"
	"complexobj/internal/snapshot"
	"complexobj/internal/store"
	"complexobj/internal/wal"
)

// modelKindOf maps a store kind byte (as recorded in WAL commit markers
// and sidecar files) back to the facade enum.
func modelKindOf(k store.Kind) (ModelKind, bool) {
	for _, mk := range AllModels() {
		if mk.internal() == k {
			return mk, true
		}
	}
	return 0, false
}

// OpenPersistent opens — creating if absent — a single-model database
// persisted in dir without going through a .codb export: the simulated
// device lives in dir/<slug>.arena (adopted by the file backend across
// runs) and the model's directory metadata in dir/<slug>.meta, written
// on Close. A database that existed is reopened with its full contents,
// a cold cache and zeroed counters; a fresh one starts empty, ready for
// Load. opts.Backend must be empty or "file" (the location is implied by
// dir). Durability here is at Close granularity — crash-safe commits are
// the CommitLog's job.
func OpenPersistent(dir string, kind ModelKind, opts Options) (*DB, error) {
	if opts.Backend != "" && opts.Backend != "file" {
		return nil, fmt.Errorf("complexobj: persistent database in %s cannot use backend %q", dir, opts.Backend)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("complexobj: persistent dir: %w", err)
	}
	opts.Backend = ""
	so, err := opts.internal()
	if err != nil {
		return nil, err
	}
	arenaPath, _ := snapshot.SidecarPaths(dir, kind.internal())
	so.Backend = disk.BackendSpec{Kind: disk.FileArena, Path: arenaPath}

	info, meta, err := snapshot.ReadSidecar(dir, kind.internal())
	switch {
	case err == nil:
		if info.Kind != kind.internal() {
			return nil, fmt.Errorf("complexobj: %s holds %s, want %s", dir, info.Kind, kind)
		}
		if so.PageSize != 0 && so.PageSize != info.PageSize {
			return nil, fmt.Errorf("complexobj: page size %d requested, %s persisted with %d", so.PageSize, dir, info.PageSize)
		}
		so.PageSize = info.PageSize
		eng, err := store.NewEngine(so)
		if err != nil {
			return nil, err
		}
		if got := eng.Dev.NumPages(); got < info.NumPages {
			eng.Close()
			return nil, fmt.Errorf("complexobj: arena %s has %d pages, sidecar recorded %d", arenaPath, got, info.NumPages)
		}
		m := store.NewWithEngine(kind.internal(), eng)
		if err := m.RestoreMeta(meta); err != nil {
			eng.Close()
			return nil, fmt.Errorf("complexobj: restore %s from %s: %w", kind, dir, err)
		}
		if err := eng.ColdCache(); err != nil {
			eng.Close()
			return nil, err
		}
		eng.ResetStats()
		return &DB{kind: kind, model: m, persistDir: dir}, nil
	case os.IsNotExist(err):
		m, err := store.New(kind.internal(), so)
		if err != nil {
			return nil, err
		}
		return &DB{kind: kind, model: m, persistDir: dir}, nil
	default:
		return nil, err
	}
}

// writePersistentMeta records the database's current state in its meta
// sidecar (the arena file is the engine's own backend, flushed and
// truncated to size by the engine Close that follows).
func (db *DB) writePersistentMeta() error {
	if err := db.model.Flush(); err != nil {
		return err
	}
	meta, err := db.model.SnapshotMeta()
	if err != nil {
		return err
	}
	dev := db.model.Engine().Dev
	return snapshot.WriteSidecarMeta(db.persistDir, db.kind.internal(),
		dev.PageSize(), dev.NumPages(), 0, 0, meta)
}

// SeedCommitDir writes each database's current state into dir as
// checkpoint sidecars (watermark 0), seeding a commit-log directory so a
// server can start durable serving there without carrying a .codb
// fallback. The databases keep working afterwards (their dirty pages are
// flushed as a side effect, like WriteSnapshot).
func SeedCommitDir(dir string, dbs ...*DB) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("complexobj: seed commit dir: %w", err)
	}
	for _, db := range dbs {
		base, err := store.Freeze(db.model)
		if err != nil {
			return fmt.Errorf("complexobj: seed commit dir: %w", err)
		}
		err = snapshot.WriteSidecar(dir, base, 0)
		base.Release()
		if err != nil {
			return fmt.Errorf("complexobj: seed commit dir: %w", err)
		}
	}
	return nil
}

// ErrNotRecovered reports commits or checkpoints on a CommitLog whose
// Recover has not run yet.
var ErrNotRecovered = errors.New("complexobj: commit log not recovered; call Recover first")

// CommitLog is the durable commit path of a serving process: one shared
// write-ahead log (dir/wal.log) plus per-model checkpoint sidecars, over
// the bases the process serves from. The lifecycle is
//
//	clog, _ := OpenCommitLog(dir)
//	base, _ := clog.OpenBase(kind, fallbackSnapshot) // per model
//	n, _ := clog.Recover()                           // replay after crash
//	...
//	info, _ := view.Commit(clog)                     // durable commits
//	clog.Checkpoint()                                // compact the log
//
// Recover replays every committed batch in the log over the registered
// bases — the sidecar state plus the replayed batches is exactly the
// last group-committed generation; torn tails and uncommitted batches
// are truncated by the log itself. Commits and checkpoints may run
// concurrently (checkpoints exclude commits for their duration); commits
// to one base must be serialized by the caller, like View.Commit says.
//
// Close does not checkpoint: a cleanly shut down process replays its log
// on the next start, which keeps the recovery path continuously
// exercised rather than saved for disasters. WAL and checkpoint I/O sit
// entirely outside the paper counters.
type CommitLog struct {
	dir  string
	file *os.File

	mu        sync.Mutex // registration, recovery, stats
	log       *wal.Log   // nil until Recover
	bases     map[ModelKind]*Base
	seqFloor  uint64 // max checkpoint watermark across registered sidecars
	recovered int64  // batches replayed by Recover

	// ckpt excludes commits while a checkpoint captures the bases and
	// truncates the log — a commit landing between a sidecar write and
	// the truncation would otherwise be lost.
	ckpt        sync.RWMutex
	checkpoints atomic.Int64
}

// WALFileName is the log's file name inside its directory.
const WALFileName = "wal.log"

// OpenCommitLog opens (creating if needed) the durable commit state in
// dir. Register the served bases with OpenBase, then call Recover.
func OpenCommitLog(dir string) (*CommitLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("complexobj: wal dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, WALFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("complexobj: open wal: %w", err)
	}
	return &CommitLog{dir: dir, file: f, bases: make(map[ModelKind]*Base)}, nil
}

// Dir returns the commit log's directory.
func (c *CommitLog) Dir() string { return c.dir }

// OpenBase opens the model's durable state from the log's directory and
// registers it for recovery, commits and checkpoints: the checkpoint
// sidecar when one exists, else the fallback .codb snapshot (the seed
// for a directory that has never checkpointed; empty snapshotPath makes
// a missing sidecar an error). Must be called before Recover.
func (c *CommitLog) OpenBase(kind ModelKind, snapshotPath string) (*Base, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log != nil {
		return nil, fmt.Errorf("complexobj: OpenBase(%s) after Recover", kind)
	}
	if _, dup := c.bases[kind]; dup {
		return nil, fmt.Errorf("complexobj: model %s registered twice", kind)
	}
	sb, info, err := snapshot.OpenSidecarBase(c.dir, kind.internal())
	switch {
	case err == nil:
		if info.Seq > c.seqFloor {
			c.seqFloor = info.Seq
		}
	case os.IsNotExist(err):
		if snapshotPath == "" {
			return nil, fmt.Errorf("complexobj: no checkpoint for %s in %s and no seed snapshot", kind, c.dir)
		}
		sb, err = snapshot.OpenBase(snapshotPath, kind.internal())
		if err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	b := &Base{kind: kind, base: sb}
	c.bases[kind] = b
	return b, nil
}

// Recover replays every committed batch of the log over the registered
// bases and arms the log for commits. Returns the number of batches
// replayed (0 after a clean checkpoint or on a fresh directory). Replay
// is idempotent — page images are absolute — so recovering a directory
// that crashed mid-recovery lands on the same state.
func (c *CommitLog) Recover() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log != nil {
		return 0, fmt.Errorf("complexobj: commit log recovered twice")
	}
	replayed := 0
	l, err := wal.Open(c.file, func(cm wal.CommitRecord, pages []wal.PageRecord) error {
		kind, ok := modelKindOf(store.Kind(cm.Model))
		if !ok {
			return fmt.Errorf("unknown model kind %d", cm.Model)
		}
		b, ok := c.bases[kind]
		if !ok {
			return fmt.Errorf("log holds commits for unregistered model %s", kind)
		}
		patches := make(map[int][]byte, len(pages))
		for _, p := range pages {
			patches[int(p.Page)] = p.Image
		}
		if _, err := b.base.Promote(b.base.Gen(), int(cm.NumPages), cm.Meta, patches); err != nil {
			return err
		}
		replayed++
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("complexobj: recover %s: %w", c.dir, err)
	}
	l.SetSeq(c.seqFloor)
	c.log = l
	c.recovered = int64(replayed)
	return replayed, nil
}

// handle returns the armed log, or nil before Recover.
func (c *CommitLog) handle() *wal.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log
}

// commit runs one view commit under the checkpoint shield.
func (c *CommitLog) commit(sv *store.View) (store.CommitResult, error) {
	l := c.handle()
	if l == nil {
		return store.CommitResult{}, ErrNotRecovered
	}
	c.ckpt.RLock()
	defer c.ckpt.RUnlock()
	return sv.Commit(l)
}

// Checkpoint captures every registered base into its sidecar pair and
// truncates the log. Commits are excluded for the duration; in-flight
// ones finish first. Safe to call at any frequency — the cost is one
// arena write per model.
func (c *CommitLog) Checkpoint() error {
	l := c.handle()
	if l == nil {
		return ErrNotRecovered
	}
	c.ckpt.Lock()
	defer c.ckpt.Unlock()
	seq := l.LastSeq()
	c.mu.Lock()
	bases := make([]*Base, 0, len(c.bases))
	for _, b := range c.bases {
		bases = append(bases, b)
	}
	c.mu.Unlock()
	for _, b := range bases {
		if err := snapshot.WriteSidecar(c.dir, b.base, seq); err != nil {
			return fmt.Errorf("complexobj: checkpoint: %w", err)
		}
	}
	if err := l.Reset(); err != nil {
		return fmt.Errorf("complexobj: checkpoint: %w", err)
	}
	c.checkpoints.Add(1)
	return nil
}

// MaybeCheckpoint checkpoints when the log has grown to at least
// threshold bytes (threshold <= 0 never triggers). Returns whether a
// checkpoint ran. This is the serving path's compaction valve: called
// after commits, it bounds both the log size and the replay work a crash
// can inherit.
func (c *CommitLog) MaybeCheckpoint(threshold int64) (bool, error) {
	l := c.handle()
	if l == nil || threshold <= 0 || l.Size() < threshold {
		return false, nil
	}
	if err := c.Checkpoint(); err != nil {
		return false, err
	}
	return true, nil
}

// CommitLogStats is an observability snapshot of the durable commit
// path. None of these counters is a paper counter.
type CommitLogStats struct {
	// Dir is the log directory.
	Dir string
	// Commits counts acknowledged commit batches since open.
	Commits int64
	// Syncs counts WAL fsync waves (group commit batches many commits
	// behind one sync, so Commits/Syncs is the batching factor).
	Syncs int64
	// AppendedBytes counts bytes appended to the log since open.
	AppendedBytes int64
	// PayloadBytes counts the dirty-page image bytes inside those
	// appends. AppendedBytes over PayloadBytes is the WAL's write
	// amplification — what framing, commit markers and full-page
	// granularity cost on top of the payload itself.
	PayloadBytes int64
	// SizeBytes is the current log length (drops to 0 at checkpoints).
	SizeBytes int64
	// LastSeq is the last acknowledged commit sequence (monotonic across
	// checkpoints and restarts).
	LastSeq uint64
	// Checkpoints counts completed checkpoints since open.
	Checkpoints int64
	// Recovered is the number of committed batches Recover replayed.
	Recovered int64
}

// Stats returns a snapshot of the log's counters (zero before Recover).
func (c *CommitLog) Stats() CommitLogStats {
	out := CommitLogStats{Dir: c.dir, Checkpoints: c.checkpoints.Load()}
	c.mu.Lock()
	out.Recovered = c.recovered
	l := c.log
	c.mu.Unlock()
	if l != nil {
		s := l.Stats()
		out.Commits = s.Commits
		out.Syncs = s.Syncs
		out.AppendedBytes = s.AppendedBytes
		out.PayloadBytes = s.PayloadBytes
		out.SizeBytes = s.SizeBytes
		out.LastSeq = s.LastSeq
	}
	return out
}

// Bases returns the registered bases keyed by model (the serving layer's
// generation report).
func (c *CommitLog) Bases() map[ModelKind]*Base {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[ModelKind]*Base, len(c.bases))
	for k, b := range c.bases {
		out[k] = b
	}
	return out
}

// Close releases the log file handle. It deliberately does not
// checkpoint: the log stays on disk and the next open replays it, so the
// recovery path runs on every restart, clean or not. The registered
// bases are not closed (callers own their view pools and release order).
func (c *CommitLog) Close() error {
	return c.file.Close()
}

// CommitInfo describes one acknowledged commit.
type CommitInfo struct {
	// Gen is the base generation the commit produced.
	Gen uint64
	// Seq is the WAL sequence that made it durable (0 for a volatile
	// commit or a no-op).
	Seq uint64
	// Pages and Bytes size the committed dirty page set.
	Pages int
	Bytes int64
}

// Commit promotes the view's mutations into its base as the next
// generation, making them durable through the commit log first (log nil
// commits volatile — promotion without crash safety). A view with no
// mutations is a no-op. Commits to one base must not run concurrently:
// the serving layer holds a per-model commit lock, batch callers commit
// sequentially. After a non-empty commit the view keeps reading its own
// (now superseded) generation; pools retire it on release instead of
// recycling it.
//
// Commit moves no paper counter — the measured statistics of the request
// that produced the mutations are unchanged.
func (v *View) Commit(log *CommitLog) (CommitInfo, error) {
	if v.closed.Load() {
		return CommitInfo{}, fmt.Errorf("complexobj: Commit on a closed view")
	}
	var res store.CommitResult
	var err error
	if log == nil {
		res, err = v.sv.Commit(nil)
	} else {
		res, err = log.commit(v.sv)
	}
	if err != nil {
		return CommitInfo{}, err
	}
	return CommitInfo{Gen: res.Gen, Seq: res.Seq, Pages: res.Pages, Bytes: res.Bytes}, nil
}

// Gen returns the base generation the view reads (views stay on the
// generation they opened against; see Base.Gen).
func (v *View) Gen() uint64 {
	if v.closed.Load() {
		return 0
	}
	return v.sv.Gen()
}

// Gen returns the base's current generation: 0 as frozen or restored,
// +1 per promoted commit (including replayed ones).
func (b *Base) Gen() uint64 { return b.base.Gen() }
