package complexobj

import (
	"context"
	"errors"
	"testing"

	"complexobj/cobench"
)

func TestParseFaultPlan(t *testing.T) {
	if p, err := ParseFaultPlan(""); p != nil || err != nil {
		t.Errorf("empty spec: plan %v, err %v (want nil, nil)", p, err)
	}
	if _, err := ParseFaultPlan("read=2"); err == nil {
		t.Error("out-of-range probability accepted")
	}
	p, err := ParseFaultPlan("seed=7,read=0.02,latency=0.05:2ms")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseFaultPlan(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if again.String() != p.String() {
		t.Errorf("round trip: %q != %q", again.String(), p.String())
	}
	if p.Stats() != (FaultStats{}) {
		t.Errorf("fresh plan has non-zero stats: %+v", p.Stats())
	}
	var nilPlan *FaultPlan
	if nilPlan.String() != "" || nilPlan.Stats() != (FaultStats{}) {
		t.Error("nil plan is not inert")
	}
}

// TestTransientFaultsKeepResultsIdentical is the facade-level bit-identity
// pin: a database under a transient-read-only schedule returns exactly the
// measurements of a fault-free one, while the plan records the absorbed
// faults.
func TestTransientFaultsKeepResultsIdentical(t *testing.T) {
	gen := cobench.DefaultConfig().WithN(40)
	w := cobench.Workload{Loops: 10, Samples: 5, Seed: 1993}

	clean, err := OpenLoaded(DASDBSNSM, Options{BufferPages: 128}, gen)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	plan, err := ParseFaultPlan("seed=3,read=0.05")
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := OpenLoaded(DASDBSNSM, Options{BufferPages: 128, Faults: plan}, gen)
	if err != nil {
		t.Fatal(err)
	}
	defer faulted.Close()

	for _, q := range cobench.AllQueries() {
		want, err := clean.Run(q, w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := faulted.Run(q, w)
		if err != nil {
			t.Fatalf("%s under transient reads: %v", q, err)
		}
		if !sameMeasurement(got, want) {
			t.Errorf("%s diverged under transient faults:\n got %+v\nwant %+v", q, got, want)
		}
	}
	if plan.Stats().ReadFaults == 0 {
		t.Error("schedule injected no read faults; the pin is vacuous")
	}
}

// TestPermanentFaultSurfacesStructured: a poisoned page fails the request
// with an error the server can classify for quarantine.
func TestPermanentFaultSurfacesStructured(t *testing.T) {
	plan, err := ParseFaultPlan("perm=1")
	if err != nil {
		t.Fatal(err)
	}
	gen := cobench.DefaultConfig().WithN(20)
	if _, err := OpenLoaded(DSM, Options{BufferPages: 64, Faults: plan}, gen); err == nil {
		t.Fatal("load over perm=1 succeeded")
	} else {
		if !IsInjectedFault(err) {
			t.Errorf("IsInjectedFault = false for %v", err)
		}
		if !IsPermanentFault(err) {
			t.Errorf("IsPermanentFault = false for %v", err)
		}
	}
	if IsInjectedFault(errors.New("plain")) || IsPermanentFault(errors.New("plain")) {
		t.Error("plain errors classified as injected")
	}
}

// TestViewQuarantine: a quarantined view is destroyed on Close instead of
// recycled, the pool counts it, and the next request gets a fresh view.
func TestViewQuarantine(t *testing.T) {
	base, want, w := poolBaseline(t)
	pool, err := NewViewPool(base, Options{BufferPages: 256}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	v, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	v.Quarantine()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Quarantined != 1 || st.Destroyed != 1 || st.Idle != 0 {
		t.Errorf("after quarantine: %+v", st)
	}

	// The pool still serves correct, bit-identical requests afterwards.
	v2, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	res, err := v2.Run(cobench.Q1b, w)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMeasurement(res, want[cobench.Q1b]) {
		t.Error("post-quarantine view measured differently")
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	st = pool.Stats()
	if st.Created != 2 {
		t.Errorf("Created = %d, want 2 (quarantined engine must not be reused)", st.Created)
	}
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestRunContextCancel: RunContext with a dead context fails with the
// context error and a structured "interrupted" wrapper; a nil context
// never interrupts.
func TestRunContextCancel(t *testing.T) {
	base, want, w := poolBaseline(t)
	v, err := base.NewView(Options{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := v.RunContext(ctx, cobench.Q1c, w); err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext(canceled) err = %v", err)
	}

	// The view survives the interruption and still measures identically
	// on the next (un-canceled) request after a reset of its state.
	res, err := v.RunContext(context.Background(), cobench.Q1c, w)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMeasurement(res, want[cobench.Q1c]) {
		t.Error("post-cancel run measured differently")
	}
}
