package complexobj

import (
	"errors"

	"complexobj/internal/faultdisk"
)

// FaultPlan is a seeded fault-injection schedule for the simulated
// device: transient and permanent I/O errors, added latency, short reads
// and torn writes, injected below the device's accounting so that the
// counters of successful operations stay bit-identical to a fault-free
// run. One plan is shared by every engine opened with it (Options.Faults)
// and accumulates the injected-fault counters across all of them; a nil
// *FaultPlan injects nothing.
type FaultPlan struct {
	inj *faultdisk.Injector
}

// ParseFaultPlan builds a plan from the textual schedule grammar — a
// comma-separated list of key=value clauses:
//
//	seed=N        schedule seed (default 0)
//	read=P        transient read-error probability
//	write=P       transient write-error probability
//	grow=P        transient grow-error probability
//	perm=P        permanent page-poisoning probability
//	short=P       short-read probability
//	torn=P        torn-write probability
//	panic=P       backend-panic probability
//	latency=[P:]D injected delay D (Go duration) with probability P (default 1)
//	pages=A[-[B]] restrict injection to pages A..B (inclusive)
//
// with every probability in [0, 1], e.g. "seed=7,read=0.02,latency=0.05:2ms".
// An empty spec returns a nil plan (inject nothing).
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	s, err := faultdisk.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return &FaultPlan{inj: faultdisk.New(s)}, nil
}

// String renders the plan's schedule back in ParseFaultPlan grammar
// (empty for a nil plan).
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	return p.inj.Spec().String()
}

// injector returns the internal injector threaded into store options
// (nil-safe).
func (p *FaultPlan) injector() *faultdisk.Injector {
	if p == nil {
		return nil
	}
	return p.inj
}

// FaultStats counts what a plan has injected so far, summed over every
// engine sharing it. Delays count injected latency sleeps; everything
// else counts injected failures.
type FaultStats struct {
	Ops           int64 `json:"ops"`
	ReadFaults    int64 `json:"readFaults"`
	WriteFaults   int64 `json:"writeFaults"`
	GrowFaults    int64 `json:"growFaults"`
	PermFaults    int64 `json:"permFaults"`
	PoisonedPages int64 `json:"poisonedPages"`
	ShortReads    int64 `json:"shortReads"`
	TornWrites    int64 `json:"tornWrites"`
	Panics        int64 `json:"panics"`
	Delays        int64 `json:"delays"`
}

// Injected returns the total number of injected failures (delays
// excluded — latency slows an operation, it does not fail it).
func (s FaultStats) Injected() int64 {
	return s.ReadFaults + s.WriteFaults + s.GrowFaults + s.PermFaults +
		s.ShortReads + s.TornWrites + s.Panics
}

// Stats snapshots the plan's injected-fault counters (zero for a nil
// plan). Safe to call concurrently with serving.
func (p *FaultPlan) Stats() FaultStats {
	if p == nil {
		return FaultStats{}
	}
	c := p.inj.Counters()
	return FaultStats{
		Ops:           c.Ops,
		ReadFaults:    c.ReadFaults,
		WriteFaults:   c.WriteFaults,
		GrowFaults:    c.GrowFaults,
		PermFaults:    c.PermFaults,
		PoisonedPages: c.PoisonedPages,
		ShortReads:    c.ShortReads,
		TornWrites:    c.TornWrites,
		Panics:        c.Panics,
		Delays:        c.Delays,
	}
}

// IsInjectedFault reports whether err (anywhere in its chain) is an
// injected fault from a FaultPlan.
func IsInjectedFault(err error) bool {
	var f *faultdisk.Fault
	return errors.As(err, &f)
}

// IsPermanentFault reports whether err is an injected fault that marks
// its page permanently poisoned: retrying through the same engine can
// never succeed, so callers should retire the engine (the server
// quarantines the view) instead of recycling it.
func IsPermanentFault(err error) bool {
	var f *faultdisk.Fault
	return errors.As(err, &f) && !f.Transient()
}
