// Command cotables regenerates every table and figure of the paper's
// evaluation section and prints them to stdout or writes them to a
// directory, in plain text, Markdown or CSV.
//
// Usage:
//
//	cotables [-format text|markdown|csv] [-out DIR]
//	         [-n 1500] [-buffer 1200] [-loops 300] [-seed 1993] [-clock]
//	         [-only table4,fig6] [-workers 0]
//
// The measurement matrix behind Tables 4-6 and 8 is computed by a bounded
// pool of (model, query) workers with independent engines (-workers, 0 =
// GOMAXPROCS); the emitted tables are identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"complexobj/experiments"
	"complexobj/report"
)

func main() {
	var (
		format  = flag.String("format", "text", "output format: text, markdown or csv")
		outDir  = flag.String("out", "", "write one file per table into this directory instead of stdout")
		n       = flag.Int("n", 1500, "number of stations in the benchmark extension")
		buffer  = flag.Int("buffer", 1200, "buffer pool size in pages")
		loops   = flag.Int("loops", 300, "navigation loops for queries 2b/3b")
		seed    = flag.Uint64("seed", 1993, "generator seed")
		clock   = flag.Bool("clock", false, "use Clock replacement instead of LRU (ablation)")
		only    = flag.String("only", "", "comma-separated filter over table titles (e.g. 'table 4,figure 6')")
		charts  = flag.Bool("charts", false, "append ASCII charts of Figures 5 and 6")
		workers = flag.Int("workers", 0, "concurrent (model, query) workers for the measurement matrix (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Gen.N = *n
	cfg.Gen.Seed = *seed
	cfg.BufferPages = *buffer
	cfg.Workload.Loops = *loops
	cfg.UseClock = *clock
	cfg.Workers = *workers

	suite := experiments.New(cfg)
	tables, err := suite.All()
	if err != nil {
		fatal(err)
	}
	tables = filterTables(tables, *only)
	if len(tables) == 0 {
		fatal(fmt.Errorf("no table matches filter %q", *only))
	}

	render := renderer(*format)
	if *outDir == "" {
		for _, t := range tables {
			fmt.Println(render(t))
		}
		if *charts {
			printCharts(suite)
		}
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	ext := map[string]string{"text": "txt", "markdown": "md", "csv": "csv"}[*format]
	for _, t := range tables {
		name := slug(t.Title) + "." + ext
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(render(t)+"\n"), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func printCharts(suite *experiments.Suite) {
	f5, err := suite.ChartFigure5()
	if err != nil {
		fatal(err)
	}
	f6, err := suite.ChartFigure6()
	if err != nil {
		fatal(err)
	}
	for _, c := range append(f5, f6...) {
		fmt.Println(c)
	}
}

func renderer(format string) func(*report.Table) string {
	switch format {
	case "text":
		return (*report.Table).Text
	case "markdown":
		return (*report.Table).Markdown
	case "csv":
		return (*report.Table).CSV
	default:
		fatal(fmt.Errorf("unknown format %q", format))
		return nil
	}
}

func filterTables(tables []*report.Table, only string) []*report.Table {
	if only == "" {
		return tables
	}
	var keep []*report.Table
	for _, t := range tables {
		title := strings.ToLower(t.Title)
		for _, f := range strings.Split(strings.ToLower(only), ",") {
			if f = strings.TrimSpace(f); f != "" && strings.Contains(title, f) {
				keep = append(keep, t)
				break
			}
		}
	}
	return keep
}

func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteRune('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cotables:", err)
	os.Exit(1)
}
