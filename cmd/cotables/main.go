// Command cotables regenerates every table and figure of the paper's
// evaluation section and prints them to stdout or writes them to a
// directory, in plain text, Markdown or CSV.
//
// Usage:
//
//	cotables [-format text|markdown|csv] [-out DIR]
//	         [-n 1500] [-buffer 1200] [-loops 300] [-seed 1993] [-clock]
//	         [-only table4,fig6] [-list] [-workers 0]
//	         [-backend mem|file|file:DIR|cow] [-db snapshot.codb]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	         [-faults SPEC]
//
// The measurement matrix behind Tables 4-6 and 8 and the sweep
// experiments are computed by bounded worker pools with independent
// engines (-workers, 0 = GOMAXPROCS); the emitted tables are identical to
// a serial run. -backend selects where the simulated devices keep their
// page images (the counters are identical across backends); with
// "-backend cow" the parallel matrix shares one immutable loaded
// extension per storage model across all workers (copy-on-write views),
// so memory no longer scales with -workers. -db opens a cogen-built
// snapshot for the default-extension models instead of regenerating and
// reloading them; combined with -only (sections are only computed when
// they match the filter), e.g.
//
//	cotables -db bench.codb -only 'table 4,table 5,table 6'
//
// reproduces the measured tables without generating the extension at all.
//
// -list prints every section title the registry can produce (the strings
// -only matches against, substring, case-insensitive) and exits.
//
// -cpuprofile/-memprofile write runtime/pprof profiles of the run, so
// performance work on the harness can attribute time and allocations
// without editing code.
//
// -faults arms a seeded fault-injection schedule under every engine the
// suite builds (see complexobj.ParseFaultPlan for the grammar). Injected
// faults surface as errors, never as corrupted tables: a run that
// completes under a transient-only schedule emits tables byte-identical
// to the fault-free run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"complexobj/experiments"
	"complexobj/internal/profile"
	"complexobj/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cotables:", err)
		os.Exit(1)
	}
}

// run does all the work, so deferred cleanup (closing the suite's
// engines, which deletes anonymous file-backend arenas) also happens on
// the error path — os.Exit lives only in main.
func run() error {
	var (
		format  = flag.String("format", "text", "output format: text, markdown or csv")
		outDir  = flag.String("out", "", "write one file per table into this directory instead of stdout")
		n       = flag.Int("n", 1500, "number of stations in the benchmark extension")
		buffer  = flag.Int("buffer", 1200, "buffer pool size in pages")
		loops   = flag.Int("loops", 300, "navigation loops for queries 2b/3b")
		seed    = flag.Uint64("seed", 1993, "generator seed")
		clock   = flag.Bool("clock", false, "use Clock replacement instead of LRU (ablation)")
		only    = flag.String("only", "", "comma-separated filter over table titles (e.g. 'table 4,figure 6'); unmatched sections are not computed")
		list    = flag.Bool("list", false, "print every section title -only can match, then exit")
		charts  = flag.Bool("charts", false, "append ASCII charts of Figures 5 and 6")
		workers = flag.Int("workers", 0, "concurrent workers for the measurement matrix and sweeps (0 = GOMAXPROCS, 1 = serial)")
		backend = flag.String("backend", "mem", "device backend: mem, file, file:DIR or cow (cells share frozen bases copy-on-write)")
		dbPath  = flag.String("db", "", "open this cogen-built .codb snapshot for the default-extension models instead of regenerating")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		faults  = flag.String("faults", "", "fault-injection schedule under every suite engine, e.g. seed=7,read=0.02")
	)
	flag.Parse()

	if *list {
		fmt.Print(listSections())
		return nil
	}

	stopProf, err := profile.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "cotables:", perr)
		}
	}()

	cfg := experiments.DefaultConfig()
	cfg.Gen.N = *n
	cfg.Gen.Seed = *seed
	cfg.BufferPages = *buffer
	cfg.Workload.Loops = *loops
	cfg.UseClock = *clock
	cfg.Workers = *workers
	cfg.Backend = *backend
	cfg.Snapshot = *dbPath
	cfg.Faults = *faults

	suite := experiments.New(cfg)
	defer suite.Close()

	var tables []*report.Table
	for _, sec := range experiments.Sections() {
		if !matches(sec.Titles, *only) {
			continue
		}
		ts, err := sec.Build(suite)
		if err != nil {
			return err
		}
		tables = append(tables, ts...)
	}
	tables = filterTables(tables, *only)
	if len(tables) == 0 {
		return fmt.Errorf("no table matches filter %q", *only)
	}

	render, err := renderer(*format)
	if err != nil {
		return err
	}
	if *outDir == "" {
		for _, t := range tables {
			fmt.Println(render(t))
		}
		if *charts {
			return printCharts(suite)
		}
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"text": "txt", "markdown": "md", "csv": "csv"}[*format]
	for _, t := range tables {
		name := slug(t.Title) + "." + ext
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(render(t)+"\n"), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// listSections renders the full section registry: one line per table or
// figure the harness can produce, in paper order, grouped by section (a
// section is the unit -only computes or skips as a whole). Titles ending
// in "..." in the source embed computed values; -only matches on the
// static prefix printed here.
func listSections() string {
	var b strings.Builder
	b.WriteString("Sections (-only matches these titles, case-insensitive substring;\n")
	b.WriteString("a section is computed only if one of its titles matches):\n")
	for i, sec := range experiments.Sections() {
		for j, title := range sec.Titles {
			if j == 0 {
				fmt.Fprintf(&b, "%3d. %s\n", i+1, title)
			} else {
				fmt.Fprintf(&b, "     %s\n", title)
			}
		}
	}
	return b.String()
}

// filterTerms parses the -only value into lowercase substring terms; nil
// means "match everything". Section gating and per-table filtering share
// this parse so the two can never disagree on the filter syntax.
func filterTerms(only string) []string {
	var terms []string
	for _, f := range strings.Split(strings.ToLower(only), ",") {
		if f = strings.TrimSpace(f); f != "" {
			terms = append(terms, f)
		}
	}
	return terms
}

// matchesAny reports whether any term occurs in the title
// (case-insensitive substring); an empty term list matches everything.
func matchesAny(title string, terms []string) bool {
	if len(terms) == 0 {
		return true
	}
	lower := strings.ToLower(title)
	for _, f := range terms {
		if strings.Contains(lower, f) {
			return true
		}
	}
	return false
}

// matches reports whether any filter term occurs in any of the section's
// static titles.
func matches(titles []string, only string) bool {
	terms := filterTerms(only)
	if len(terms) == 0 {
		return true
	}
	for _, title := range titles {
		if matchesAny(title, terms) {
			return true
		}
	}
	return false
}

func printCharts(suite *experiments.Suite) error {
	f5, err := suite.ChartFigure5()
	if err != nil {
		return err
	}
	f6, err := suite.ChartFigure6()
	if err != nil {
		return err
	}
	for _, c := range append(f5, f6...) {
		fmt.Println(c)
	}
	return nil
}

func renderer(format string) (func(*report.Table) string, error) {
	switch format {
	case "text":
		return (*report.Table).Text, nil
	case "markdown":
		return (*report.Table).Markdown, nil
	case "csv":
		return (*report.Table).CSV, nil
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func filterTables(tables []*report.Table, only string) []*report.Table {
	terms := filterTerms(only)
	if len(terms) == 0 {
		return tables
	}
	var keep []*report.Table
	for _, t := range tables {
		if matchesAny(t.Title, terms) {
			keep = append(keep, t)
		}
	}
	return keep
}

func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteRune('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
