package main

import (
	"strings"
	"testing"

	"complexobj/experiments"
	"complexobj/report"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Table 4: measured physical page I/Os (pages per object/loop)": "table-4-measured-physical-page-i-os-pages-per-object-loop",
		"Figure 6 (DSM): query 2b":                                     "figure-6-dsm-query-2b",
		"---":                                                          "",
		"A  B":                                                         "a-b",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFilterTables(t *testing.T) {
	tables := []*report.Table{
		{Title: "Table 4: measured"},
		{Title: "Table 5: calls"},
		{Title: "Figure 6 (DSM)"},
	}
	if got := filterTables(tables, ""); len(got) != 3 {
		t.Errorf("empty filter kept %d", len(got))
	}
	if got := filterTables(tables, "table 4"); len(got) != 1 || got[0].Title != "Table 4: measured" {
		t.Errorf("single filter: %v", titles(got))
	}
	if got := filterTables(tables, "table 5, figure"); len(got) != 2 {
		t.Errorf("multi filter kept %d", len(got))
	}
	if got := filterTables(tables, "nonexistent"); len(got) != 0 {
		t.Errorf("bogus filter kept %d", len(got))
	}
	// Whitespace and case insensitivity.
	if got := filterTables(tables, "  TABLE 4  "); len(got) != 1 {
		t.Errorf("trimmed filter kept %d", len(got))
	}
}

func titles(ts []*report.Table) []string {
	var out []string
	for _, t := range ts {
		out = append(out, t.Title)
	}
	return out
}

func TestRendererSelection(t *testing.T) {
	tbl := &report.Table{Title: "t", Header: []string{"a"}}
	tbl.AddRow("1")
	for _, format := range []string{"text", "markdown", "csv"} {
		fn, err := renderer(format)
		if err != nil || fn == nil || fn(tbl) == "" {
			t.Errorf("renderer(%q) unusable (err %v)", format, err)
		}
	}
	if _, err := renderer("pdf"); err == nil {
		t.Error("renderer accepted unknown format")
	}
}

func TestSectionMatches(t *testing.T) {
	titles := []string{"Table 4: measured physical page I/Os", "Table 5: measured I/O calls"}
	if !matches(titles, "") {
		t.Error("empty filter must match every section")
	}
	if !matches(titles, "table 5") {
		t.Error("filter missed a declared title")
	}
	if matches(titles, "figure 6") {
		t.Error("filter matched an undeclared title")
	}
}

// TestListSections pins the -list output against the registry: every
// declared section title appears exactly once, so -only users can copy
// filters straight from the listing.
func TestListSections(t *testing.T) {
	out := listSections()
	for _, sec := range experiments.Sections() {
		for _, title := range sec.Titles {
			if !strings.Contains(out, title) {
				t.Errorf("-list output missing title %q", title)
			}
			if strings.Count(out, title) != 1 {
				t.Errorf("-list output repeats title %q", title)
			}
			// Every listed title must survive its own round trip through
			// the -only matcher.
			if !matches(sec.Titles, title) {
				t.Errorf("title %q does not match itself as an -only filter", title)
			}
		}
	}
}
