// Command coshard is the scale-out shard router: it fronts N coserve
// backends, each serving a slice of the storage models out of its own
// .codb segment (cogen -split built the segments and the shard map), and
// re-speaks the single-node wire surface — so cobench -serve-url drives a
// sharded deployment with the exact flags that drive one coserve.
//
// Usage:
//
//	coshard -shard-map bench.shards.json -backends http://h0:8077,http://h1:8078
//	        [-addr :8070] [-retries 3] [-fanout 4] [-timeout 60s]
//	        [-idle-conns 32]
//
// Endpoints: /run (routed to the owning backend, with bounded retry over
// transient transport errors, 503s and 421s), /stats (scatter-gathered
// and merged cell-wise — aggregate counters are bit-identical to a single
// node serving the whole snapshot), /info, /healthz (per-backend), and
// /metrics (router-side counters under the coshard_ prefix: per-shard
// requests/retries/failures/latency, connection dials, map version).
//
// POST /map/assign?shard=N&backend=URL repoints one shard between two
// live backends — the middle step of the handoff protocol (new owner
// POST /shards/acquire, router /map/assign, old owner POST
// /shards/release), under which a segment moves without copying a byte
// and without losing a request. The router never hedges: a /run is in
// flight on at most one backend at a time, because a duplicated run would
// double-count its cell in the backend's /stats aggregate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"complexobj/internal/router"
)

func main() {
	var (
		mapPath  = flag.String("shard-map", "", "shard-map file written by cogen -split (required)")
		backends = flag.String("backends", "", "comma-separated backend base URLs, one per shard in map order (default: the map's backend fields)")
		addr     = flag.String("addr", ":8070", "listen address")
		retries  = flag.Int("retries", 3, "attempts per routed request across transient failures")
		fanoutN  = flag.Int("fanout", 4, "concurrent backends per scatter-gather")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-backend request timeout")
		idle     = flag.Int("idle-conns", 32, "keep-alive connections pooled per backend")
	)
	flag.Parse()
	if err := run(*mapPath, *backends, *addr, *retries, *fanoutN, *timeout, *idle); err != nil {
		fmt.Fprintln(os.Stderr, "coshard:", err)
		os.Exit(1)
	}
}

func run(mapPath, backends, addr string, retries, fanoutN int, timeout time.Duration, idle int) error {
	if mapPath == "" {
		return fmt.Errorf("-shard-map is required (build one with: cogen -db bench.codb -split 2)")
	}
	cfg := router.Config{
		MapPath:        mapPath,
		Retries:        retries,
		Fanout:         fanoutN,
		Timeout:        timeout,
		MaxIdlePerHost: idle,
	}
	if backends != "" {
		for _, b := range strings.Split(backends, ",") {
			cfg.Backends = append(cfg.Backends, strings.TrimSpace(b))
		}
	}
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()

	fmt.Printf("coshard: routing %s on %s (map version %d)\n", mapPath, addr, rt.Version())
	for _, sh := range rt.Map() {
		fmt.Printf("coshard: shard %d -> %s (%s)\n", sh.ID, sh.Backend, strings.Join(sh.Models, "+"))
	}

	hs := &http.Server{Addr: addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("coshard: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return nil
}
