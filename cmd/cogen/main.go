// Command cogen generates a benchmark extension (paper §2.1) and reports
// its distribution statistics, optionally dumping individual objects or
// building a reusable database snapshot.
//
// Usage:
//
//	cogen [-n 1500] [-seed 1993] [-prob 0.8] [-fanout 2] [-maxseeing 15] [-skew]
//	      [-dump 42] [-db bench.codb] [-wal DIR] [-buffer 1200] [-faults SPEC]
//	      [-split N] [-strategy range]
//
// With -db, the extension is loaded into every storage model and the
// result is serialized as a .codb snapshot (device arenas + directory
// metadata), which cotables -db / cobench -db replay without regenerating
// or reloading anything. With -wal, the loaded models additionally seed
// a commit-log directory as checkpoint sidecars, so `coserve -wal DIR`
// can start durable serving there without a snapshot fallback. The models load concurrently, each over its own
// engine. -faults arms a seeded fault-injection schedule under those
// loading engines (see complexobj.ParseFaultPlan for the grammar) —
// mainly a resilience exercise: the load either survives transient
// faults and writes a snapshot identical to the fault-free one, or fails
// with a structured error, never a corrupt snapshot; the injected-fault
// counters go to stderr.
//
// With -split N, the -db snapshot is additionally split into N per-shard
// .codb segments (bench.s0.codb, …) plus a shard map (bench.shards.json)
// for the scale-out deployment: N coserve backends each serving their
// segment (-shard-map + -shards) behind a coshard router. -strategy
// selects the partition function (range: contiguous slices of the model
// list; hash: FNV-1a of the model name; explicit:dsm,nsmx/ddsm,nsm,dnsm:
// an operator-chosen assignment, the only way to balance shards by
// measured load — per-model costs differ by factors, not percent).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
	"complexobj/internal/shard"
	"complexobj/report"
)

func main() {
	var (
		n         = flag.Int("n", 1500, "number of stations")
		seed      = flag.Uint64("seed", 1993, "generator seed")
		prob      = flag.Float64("prob", 0.8, "sub-object generation probability")
		fanout    = flag.Int("fanout", 2, "slots per nesting level")
		maxSeeing = flag.Int("maxseeing", 15, "maximum sightseeings per station")
		skew      = flag.Bool("skew", false, "data-skew preset (prob 0.2, fanout 8)")
		dump      = flag.Int("dump", -1, "print this station in full")
		hist      = flag.Bool("hist", false, "print the object-size histogram (pages per object)")
		dbPath    = flag.String("db", "", "load every storage model and write a reusable .codb snapshot here")
		walDir    = flag.String("wal", "", "seed this commit-log directory with checkpoint sidecars of the loaded models (for coserve -wal)")
		buffer    = flag.Int("buffer", 1200, "buffer pool pages used while loading the snapshot models")
		faults    = flag.String("faults", "", "fault-injection schedule under the snapshot-loading engines, e.g. seed=7,read=0.02")
		split     = flag.Int("split", 0, "split the -db snapshot into this many per-shard .codb segments plus a shard map (0: no split)")
		strategy  = flag.String("strategy", shard.StrategyRange, "shard partition strategy for -split: hash, range, or explicit:dsm,nsmx/ddsm,nsm,dnsm (a load-aware split)")
	)
	flag.Parse()

	cfg := cobench.Config{N: *n, Prob: *prob, Fanout: *fanout, MaxSeeing: *maxSeeing, Seed: *seed}
	if *skew {
		cfg = cfg.Skewed()
	}
	stations, err := cobench.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cogen:", err)
		os.Exit(1)
	}
	st := cobench.Describe(stations)

	t := &report.Table{
		Title:  fmt.Sprintf("benchmark extension (N=%d, prob=%.2f, fanout=%d, maxSeeing=%d, seed=%d)", cfg.N, cfg.Prob, cfg.Fanout, cfg.MaxSeeing, cfg.Seed),
		Header: []string{"STATISTIC", "VALUE", "PAPER EXPECTATION"},
	}
	t.AddRow("avg platforms/station", report.Num(st.AvgPlatforms), report.Num(cfg.ExpectedPlatforms()))
	t.AddRow("avg connections/station", report.Num(st.AvgConnections), report.Num(cfg.ExpectedChildren()))
	t.AddRow("avg sightseeings/station", report.Num(st.AvgSeeings), report.Num(cfg.ExpectedSeeings()))
	t.AddRow("avg grand-children", report.Num(st.AvgGrand), report.Num(cfg.ExpectedGrandChildren()))
	t.AddRow("max platforms", report.Int(st.MaxPlatforms), "")
	t.AddRow("max connections/station", report.Int(st.MaxConnections), "")
	t.AddRow("max sightseeings", report.Int(st.MaxSeeings), "")
	t.AddRow("avg encoded bytes/object", report.Num(st.AvgEncodedBytes), "")
	fmt.Println(t.Text())

	if *hist {
		fmt.Println("object size histogram (direct-storage pages per object):")
		buckets := cobench.SizeHistogram(stations)
		maxCount := 0
		for _, b := range buckets {
			if b.Count > maxCount {
				maxCount = b.Count
			}
		}
		for _, b := range buckets {
			bar := ""
			if maxCount > 0 {
				bar = strings.Repeat("#", b.Count*50/maxCount)
			}
			fmt.Printf("%3d page(s) | %-50s %d\n", b.Pages, bar, b.Count)
		}
		fmt.Println()
	}

	if *dump >= 0 {
		if *dump >= len(stations) {
			fmt.Fprintf(os.Stderr, "cogen: station %d out of range\n", *dump)
			os.Exit(1)
		}
		printStation(stations[*dump])
	}

	if *dbPath != "" || *walDir != "" {
		if err := buildSnapshot(*dbPath, *walDir, cfg, stations, *buffer, *faults); err != nil {
			fmt.Fprintln(os.Stderr, "cogen:", err)
			os.Exit(1)
		}
	}
	if *split > 0 {
		if *dbPath == "" {
			fmt.Fprintln(os.Stderr, "cogen: -split needs -db (segments are extracted from the snapshot)")
			os.Exit(1)
		}
		if err := splitSnapshot(*dbPath, *split, *strategy); err != nil {
			fmt.Fprintln(os.Stderr, "cogen:", err)
			os.Exit(1)
		}
	}
}

// splitSnapshot partitions the snapshot's models across n shards and
// extracts one .codb segment per non-empty shard (bench.codb →
// bench.s0.codb…), writing the shard map next to them (bench.shards.json)
// with segment paths relative to the map file. Segments copy arena bytes
// verbatim (complexobj.ExtractSnapshot), so a shard served from its
// segment measures bit-identically to one served from the full snapshot.
func splitSnapshot(dbPath string, n int, strategy string) error {
	info, err := complexobj.StatSnapshot(dbPath)
	if err != nil {
		return err
	}
	names := make([]string, len(info.Models))
	byName := make(map[string]complexobj.ModelKind, len(info.Models))
	for i, k := range info.Models {
		names[i] = k.String()
		byName[k.String()] = k
	}
	// Explicit specs accept the short model aliases the CLIs use (dsm,
	// ddsm, …); translate them to the display names the map stores.
	if rest, ok := strings.CutPrefix(strategy, shard.StrategyExplicit); ok {
		groups := strings.Split(rest, "/")
		for i, group := range groups {
			tokens := strings.Split(group, ",")
			for j, tok := range tokens {
				if k, err := complexobj.ModelByName(strings.TrimSpace(tok)); err == nil {
					tokens[j] = k.String()
				}
			}
			groups[i] = strings.Join(tokens, ",")
		}
		strategy = shard.StrategyExplicit + strings.Join(groups, "/")
	}
	m, err := shard.Partition(names, n, strategy)
	if err != nil {
		return err
	}
	for i := range m.Shards {
		s := &m.Shards[i]
		if len(s.Models) == 0 {
			continue // a hash shard may own nothing; it gets no segment
		}
		kinds := make([]complexobj.ModelKind, len(s.Models))
		for j, name := range s.Models {
			kinds[j] = byName[name]
		}
		seg := shard.SegmentName(dbPath, s.ID)
		if err := complexobj.ExtractSnapshot(dbPath, seg, kinds); err != nil {
			return err
		}
		s.Segment = filepath.Base(seg)
		st, err := os.Stat(seg)
		if err != nil {
			return err
		}
		fmt.Printf("wrote shard %d segment %s: %s, %.1f MiB\n",
			s.ID, seg, strings.Join(s.Models, "+"), float64(st.Size())/(1<<20))
	}
	mapPath := shard.MapName(dbPath)
	if err := m.Write(mapPath); err != nil {
		return err
	}
	fmt.Printf("wrote shard map %s: %d shards over %d models (%s, version %d)\n",
		mapPath, len(m.Shards), len(names), m.Strategy, m.Version)
	return nil
}

// buildSnapshot loads the generated extension into every storage model
// (concurrently, each over its own engine) and writes the .codb snapshot
// (path non-empty) and/or seeds a commit-log directory (walDir non-empty).
func buildSnapshot(path, walDir string, cfg cobench.Config, stations []*cobench.Station, bufferPages int, faults string) error {
	plan, err := complexobj.ParseFaultPlan(faults)
	if err != nil {
		return err
	}
	kinds := complexobj.AllModels()
	dbs := make([]*complexobj.DB, len(kinds))
	defer func() {
		for _, db := range dbs {
			if db != nil {
				db.Close()
			}
		}
	}()
	err = fanout.Run(len(kinds), 0, func(i int) error {
		db, err := complexobj.Open(kinds[i], complexobj.Options{BufferPages: bufferPages, Faults: plan})
		if err != nil {
			return err
		}
		if err := db.Load(stations); err != nil {
			db.Close()
			return fmt.Errorf("load %s: %w", kinds[i], err)
		}
		dbs[i] = db
		return nil
	})
	if err != nil {
		return err
	}
	if path != "" {
		if err := complexobj.WriteSnapshot(path, cfg, dbs...); err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("wrote snapshot %s: %d models, N=%d, %.1f MiB\n",
			path, len(kinds), cfg.N, float64(st.Size())/(1<<20))
	}
	if walDir != "" {
		if err := complexobj.SeedCommitDir(walDir, dbs...); err != nil {
			return err
		}
		fmt.Printf("seeded commit dir %s: %d model checkpoints, N=%d\n", walDir, len(kinds), cfg.N)
	}
	if plan != nil {
		fs := plan.Stats()
		fmt.Fprintf(os.Stderr, "cogen: survived %d injected faults over %d device ops (%s)\n",
			fs.Injected(), fs.Ops, plan)
	}
	return nil
}

func printStation(s *cobench.Station) {
	fmt.Printf("Station key=%d name=%q platforms=%d sightseeings=%d\n",
		s.Key, s.Name, s.NoPlatform, s.NoSeeing)
	for _, p := range s.Platforms {
		fmt.Printf("  Platform %d (lines=%d, ticket=%d) %q\n", p.Nr, p.NoLine, p.TicketCode, p.Information)
		for _, c := range p.Conns {
			fmt.Printf("    Connection line=%d -> station %d (key %d) at %q\n",
				c.LineNr, c.OidConnection, c.KeyConnection, c.DepartureTimes)
		}
	}
	for _, g := range s.Seeings {
		fmt.Printf("  Sightseeing %d: %q at %q (%s; %s)\n", g.Nr, g.Description, g.Location, g.History, g.Remarks)
	}
}
