package main

import (
	"testing"

	"complexobj"
	"complexobj/cobench"
)

func TestQueryByName(t *testing.T) {
	for _, q := range cobench.AllQueries() {
		got, ok := cobench.QueryByName(q.String())
		if !ok || got != q {
			t.Errorf("cobench.QueryByName(%q) = %v, %v", q.String(), got, ok)
		}
	}
	if _, ok := cobench.QueryByName("9z"); ok {
		t.Error("bogus query accepted")
	}
}

func TestMetricFn(t *testing.T) {
	res := complexobj.QueryResult{
		Pages: 1, Calls: 2, Fixes: 3, PagesWritten: 4,
	}
	for name, want := range map[string]float64{
		"pages": 1, "calls": 2, "fixes": 3, "writes": 4,
	} {
		fn, ok := metricFn(name)
		if !ok {
			t.Fatalf("metricFn(%q) missing", name)
		}
		if got := fn(res); got != want {
			t.Errorf("metric %q = %f, want %f", name, got, want)
		}
	}
	if _, ok := metricFn("bogus"); ok {
		t.Error("bogus metric accepted")
	}
}
