package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/metrics"
	"complexobj/internal/server"
)

// RunReport is the machine-readable summary -report writes: the same
// histogram figures the stderr line prints, plus the soak gate verdicts
// when -soak ran. Schema stability matters — CI's soak-smoke job and any
// dashboards consume this file.
type RunReport struct {
	Mode        string          `json:"mode"` // "closed", "open" or "soak"
	WallSeconds float64         `json:"wallSeconds"`
	Clients     int             `json:"clients,omitempty"`
	RateTarget  float64         `json:"rateTarget,omitempty"`
	Requests    int64           `json:"requests"`
	Throughput  float64         `json:"throughputRPS"`
	Retries     int64           `json:"retries"`
	Shed        int64           `json:"shed"`
	Latency     metrics.Summary `json:"latency"`
	// Commits and CommitLatency appear in write mode (-write-frac against
	// a coserve -wal): the acknowledged durable commits and their
	// server-side latency distribution.
	Commits       int64            `json:"commits,omitempty"`
	CommitLatency *metrics.Summary `json:"commitLatency,omitempty"`
	// WAL appears alongside Commits: the server's write-ahead-log append
	// volume over this run against the dirty-page payload the commits
	// actually carried — the write-amplification axis.
	WAL  *WALReport  `json:"wal,omitempty"`
	Soak *SoakReport `json:"soak,omitempty"`
}

// WALReport is the write-amplification block of a write-mode run: the
// delta of the server's durability counters between the start and end of
// the run. AppendedBytes / PayloadBytes is the amplification — framing,
// commit markers and full-page write granularity on top of the bytes the
// commits logically changed.
type WALReport struct {
	AppendedBytes      int64   `json:"appendedBytes"`
	PayloadBytes       int64   `json:"payloadBytes"`
	Syncs              int64   `json:"syncs"`
	WriteAmplification float64 `json:"writeAmplification,omitempty"`
}

// SoakStep is one rung of the soak ramp.
type SoakStep struct {
	RateRPS   float64         `json:"rateRPS"`
	Seconds   float64         `json:"seconds"`
	Requests  int64           `json:"requests"`
	Exhausted int64           `json:"shedExhausted"`
	Errors    int64           `json:"errors"`
	Latency   metrics.Summary `json:"latency"`
}

// SoakReport carries the soak gates: RSS growth against the bound,
// server- and client-side divergence, and hard errors. Passed is the
// conjunction — the process exit code mirrors it.
type SoakReport struct {
	Steps                []SoakStep `json:"steps"`
	StartRSSBytes        int64      `json:"startRssBytes"`
	PeakRSSBytes         int64      `json:"peakRssBytes"`
	RSSGrowthBytes       int64      `json:"rssGrowthBytes"`
	RSSBoundBytes        int64      `json:"rssBoundBytes"`
	RSSGateSkipped       bool       `json:"rssGateSkipped"` // server reported no RSS (non-Linux)
	ServerDivergentCells int64      `json:"serverDivergentCells"`
	ClientDivergentCells int64      `json:"clientDivergentCells"`
	HardErrors           int64      `json:"hardErrors"`
	ShedExhausted        int64      `json:"shedExhausted"`
	// Write-mode gate (only meaningful with -write-frac): commits the
	// server acknowledged to this client, the growth of the server's own
	// commit counter over the soak, and the difference — acknowledged
	// commits the server's counter does not account for. LostUpdates must
	// be zero for the soak to pass.
	AckedCommits  int64 `json:"ackedCommits,omitempty"`
	ServerCommits int64 `json:"serverCommits,omitempty"`
	LostUpdates   int64 `json:"lostUpdates,omitempty"`
	Passed        bool  `json:"passed"`
}

// writeReport writes rep as indented JSON (atomic enough for CI: a
// temp-file rename would be overkill for a single consumer).
func writeReport(path string, rep *RunReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// soakCell tracks client-side determinism of one (model, query) cell:
// the raw counters of the first successful response; every later
// response must match bit for bit.
type soakCell struct {
	mu        sync.Mutex
	seen      bool
	raw       complexobj.Stats
	divergent bool
}

func (c *soakCell) observe(raw complexobj.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.seen {
		c.seen, c.raw = true, raw
		return
	}
	if raw != c.raw {
		c.divergent = true
	}
}

// runSoak drives a sustained open-loop load against the server as a
// stepped rate ramp (steps rungs climbing to peakRate req/s over total),
// then gates: zero hard errors, zero server-side divergent /stats cells,
// zero client-side counter divergence, and server RSS growth within
// rssBoundMB MiB of the first sample. Retry-exhausted sheds (every
// attempt 503'd) are counted, reported, and tolerated — an overdriven
// ramp shedding load is the resilience design working, not a failure.
// The report (when requested) is written before any gate error returns,
// so a failing soak still leaves its evidence behind.
func runSoak(baseURL string, models []complexobj.ModelKind, queries []cobench.Query,
	gen cobench.Config, w cobench.Workload, bufferPages int,
	total time.Duration, steps int, peakRate float64, rssBoundMB int,
	writeFrac float64, reportPath string) error {

	c := newServedClient(baseURL)
	if err := c.checkServer(gen, bufferPages); err != nil {
		return err
	}
	c.setWriteFrac(writeFrac)
	var commitsBefore int64
	if writeFrac > 0 {
		n, durable, err := c.serverCommits()
		if err != nil {
			return err
		}
		if !durable {
			return fmt.Errorf("-write-frac needs a durable server (start coserve -wal)")
		}
		commitsBefore = n
	}
	if steps < 1 {
		steps = 1
	}
	if peakRate <= 0 {
		peakRate = 50
	}
	stepDur := total / time.Duration(steps)
	if stepDur <= 0 {
		return fmt.Errorf("-soak %v too short for %d steps", total, steps)
	}

	type cellID struct {
		mi, qi int
	}
	var ids []cellID
	for mi := range models {
		for qi := range queries {
			ids = append(ids, cellID{mi, qi})
		}
	}
	cells := make(map[cellID]*soakCell, len(ids))
	for _, id := range ids {
		cells[id] = &soakCell{}
	}

	var (
		wg         sync.WaitGroup
		hardErrs   atomic.Int64
		exhausted  atomic.Int64
		firstErrMu sync.Mutex
		firstErr   error
	)
	fire := func(id cellID, hist *metrics.Histogram, stepReqs, stepExh, stepErrs *atomic.Int64) {
		defer wg.Done()
		start := time.Now()
		res, exh, err := c.runOne(models[id.mi], queries[id.qi], w)
		if err != nil {
			if exh {
				exhausted.Add(1)
				stepExh.Add(1)
				return
			}
			hardErrs.Add(1)
			stepErrs.Add(1)
			firstErrMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			firstErrMu.Unlock()
			return
		}
		hist.Observe(time.Since(start))
		stepReqs.Add(1)
		cells[id].observe(res.Raw)
	}

	// RSS sampling: the server's own figures via /info, once a second in
	// the background. startRSS is the first non-zero sample; zero samples
	// throughout (non-Linux server) skip the RSS gate gracefully.
	var (
		rssMu             sync.Mutex
		startRSS, peakRSS int64
	)
	sampleRSS := func() {
		ps, err := c.procStats()
		if err != nil || ps.RSSBytes == 0 {
			return
		}
		rssMu.Lock()
		if startRSS == 0 {
			startRSS = ps.RSSBytes
		}
		if ps.RSSBytes > peakRSS {
			peakRSS = ps.RSSBytes
		}
		rssMu.Unlock()
	}
	sampleRSS()
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case <-tick.C:
				sampleRSS()
			}
		}
	}()

	// The ramp: step i fires at peak·(i+1)/steps req/s for stepDur,
	// round-robining the cells so every (model, query) pair keeps seeing
	// traffic at every rung.
	wallStart := time.Now()
	var stepReports []SoakStep
	next := 0
	for i := 0; i < steps; i++ {
		rate := peakRate * float64(i+1) / float64(steps)
		interval := time.Duration(float64(time.Second) / rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		var (
			hist     = metrics.NewHistogram()
			stepReqs atomic.Int64
			stepExh  atomic.Int64
			stepErrs atomic.Int64
		)
		fmt.Fprintf(os.Stderr, "soak step %d/%d: %.1f req/s for %v\n", i+1, steps, rate, stepDur.Round(time.Millisecond))
		stepStart := time.Now()
		tick := time.NewTicker(interval)
		deadline := time.After(stepDur)
	step:
		for {
			select {
			case <-deadline:
				break step
			case <-tick.C:
				id := ids[next%len(ids)]
				next++
				wg.Add(1)
				go fire(id, hist, &stepReqs, &stepExh, &stepErrs)
			}
		}
		tick.Stop()
		stepReports = append(stepReports, SoakStep{
			RateRPS:   rate,
			Seconds:   time.Since(stepStart).Seconds(),
			Requests:  stepReqs.Load(),
			Exhausted: stepExh.Load(),
			Errors:    stepErrs.Load(),
			Latency:   metrics.Summarize(hist.Snapshot()),
		})
	}
	wg.Wait()
	close(stopSampling)
	samplerWG.Wait()
	sampleRSS()
	wall := time.Since(wallStart)

	// Server-side verdicts after the load has fully drained.
	divergent, statsErr := c.serverDivergentCells()
	if statsErr != nil {
		firstErrMu.Lock()
		if firstErr == nil {
			firstErr = statsErr
		}
		firstErrMu.Unlock()
		hardErrs.Add(1)
	}
	var clientDivergent int64
	for _, id := range ids {
		if cells[id].divergent {
			clientDivergent++
		}
	}

	rssMu.Lock()
	start, peak := startRSS, peakRSS
	rssMu.Unlock()
	bound := int64(rssBoundMB) * 1 << 20
	growth := peak - start
	rssSkipped := start == 0
	rssOK := rssSkipped || growth <= bound

	// Write-mode gate: every commit acknowledged to this client must show
	// up in the server's own counter (the reverse — a retried request
	// committing twice after a lost acknowledgment — is fine).
	var acked, serverDelta, lost int64
	if writeFrac > 0 {
		acked = c.acked.Load()
		after, durable, err := c.serverCommits()
		if err != nil {
			firstErrMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			firstErrMu.Unlock()
			hardErrs.Add(1)
		} else if durable {
			serverDelta = after - commitsBefore
			if lost = acked - serverDelta; lost < 0 {
				lost = 0
			}
		}
	}

	soak := &SoakReport{
		Steps:                stepReports,
		StartRSSBytes:        start,
		PeakRSSBytes:         peak,
		RSSGrowthBytes:       growth,
		RSSBoundBytes:        bound,
		RSSGateSkipped:       rssSkipped,
		ServerDivergentCells: divergent,
		ClientDivergentCells: clientDivergent,
		HardErrors:           hardErrs.Load(),
		ShedExhausted:        exhausted.Load(),
		AckedCommits:         acked,
		ServerCommits:        serverDelta,
		LostUpdates:          lost,
		Passed:               hardErrs.Load() == 0 && divergent == 0 && clientDivergent == 0 && rssOK && lost == 0,
	}
	snap := c.hist.Snapshot()
	rep := &RunReport{
		Mode:        "soak",
		WallSeconds: wall.Seconds(),
		RateTarget:  peakRate,
		Requests:    snap.Count,
		Throughput:  float64(snap.Count) / wall.Seconds(),
		Retries:     c.retries.Load(),
		Shed:        c.shed.Load(),
		Latency:     metrics.Summarize(snap),
		Soak:        soak,
	}
	if reportPath != "" {
		if err := writeReport(reportPath, rep); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr,
		"soak: %d requests over %v (peak %.1f req/s, %d steps), p50 %s / p99 %s / p99.9 %s, retries %d, shed %d, exhausted %d\n",
		snap.Count, wall.Round(time.Millisecond), peakRate, steps,
		micros(float64(rep.Latency.P50Micros)), micros(float64(rep.Latency.P99Micros)),
		micros(float64(rep.Latency.P999Micros)), rep.Retries, rep.Shed, soak.ShedExhausted)
	if rssSkipped {
		fmt.Fprintln(os.Stderr, "soak: RSS gate skipped (server reported no RSS figure)")
	} else {
		fmt.Fprintf(os.Stderr, "soak: server RSS %d -> %d bytes (growth %d, bound %d)\n", start, peak, growth, bound)
	}
	if writeFrac > 0 {
		cl := metrics.Summarize(c.commitHist.Snapshot())
		fmt.Fprintf(os.Stderr, "soak: %d durable commits acknowledged (server delta %d, lost %d), commit latency p50 %s / p99 %s / max %s\n",
			acked, serverDelta, lost,
			micros(float64(cl.P50Micros)), micros(float64(cl.P99Micros)), micros(float64(cl.MaxMicros)))
	}

	switch {
	case hardErrs.Load() > 0:
		return fmt.Errorf("soak: %d hard errors (first: %v)", hardErrs.Load(), firstErr)
	case divergent > 0:
		return fmt.Errorf("soak: server reports %d divergent /stats cells", divergent)
	case clientDivergent > 0:
		return fmt.Errorf("soak: %d cells returned non-identical counters across requests", clientDivergent)
	case !rssOK:
		return fmt.Errorf("soak: server RSS grew %d bytes, bound %d (start %d, peak %d)", growth, bound, start, peak)
	case lost > 0:
		return fmt.Errorf("soak: %d lost updates (%d commits acknowledged, server counter grew %d)", lost, acked, serverDelta)
	}
	fmt.Fprintln(os.Stderr, "soak: all gates passed")
	return nil
}

// procStats fetches the server's process figures from /info.
func (c *servedClient) procStats() (metrics.ProcStats, error) {
	var info server.InfoResponse
	if err := c.getJSON("/info", &info); err != nil {
		return metrics.ProcStats{}, err
	}
	return info.Metrics.Process, nil
}

// serverDivergentCells counts /stats cells flagged divergent.
func (c *servedClient) serverDivergentCells() (int64, error) {
	var stats server.StatsResponse
	if err := c.getJSON("/stats", &stats); err != nil {
		return 0, err
	}
	var n int64
	for _, cell := range stats.Cells {
		if cell.Divergent {
			n++
		}
	}
	return n, nil
}

// getJSON fetches one endpoint into out.
func (c *servedClient) getJSON(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
