// Command cobench runs the complex object benchmark (paper §2) against one
// or all storage models and prints the measured I/O statistics.
//
// Usage:
//
//	cobench [-model all|dsm|ddsm|nsm|nsmx|dnsm] [-query all|1a|1b|1c|2a|2b|3a|3b]
//	        [-n 1500] [-buffer 1200] [-loops 300] [-samples 40] [-seed 1993]
//	        [-skew] [-maxseeing 15] [-metric pages|calls|fixes|writes]
//	        [-workers 0] [-backend mem|file|file:DIR|cow] [-db snapshot.codb]
//	        [-repeat 1] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	        [-serve-url http://host:8077] [-clients 8] [-rate 0]
//	        [-faults SPEC] [-report out.json] [-write-frac 0]
//	        [-soak 2m] [-soak-steps 4] [-soak-rss-mb 64]
//
// Each storage model owns an independent simulated engine, so the model
// rows are measured concurrently by a bounded worker pool (-workers, 0 =
// GOMAXPROCS); the printed table is identical to a serial run. -backend
// selects where each engine keeps its page images (counters are identical
// across backends); -db restores the models from a cogen-built snapshot
// instead of regenerating and loading the extension.
//
// -repeat measures the whole table that many times (the runs are
// deterministic and identical; the table is printed once) — useful under
// -cpuprofile/-memprofile to accumulate signal. With -db and -backend
// cow, each model's snapshot arena is opened exactly once per invocation
// (mmap'ed read-only where the platform allows) and every repeat gets a
// fresh copy-on-write view of that one base, instead of re-reading the
// snapshot per run.
//
// With -serve-url, cobench is a load generator against a running coserve
// instead of measuring locally: every (model, query) cell becomes an HTTP
// request, -clients concurrent closed-loop clients drive them (-repeat
// repeats the whole set), and -rate R switches to an open loop launching
// R requests per second regardless of completions. The printed table is
// built from the served per-request counters and is byte-identical to the
// local run with the same flags — that equivalence is the server's
// acceptance test — while a latency/throughput report (p50/p90/p99/p99.9
// percentiles from the same histogram code the server's /metrics runs
// on, plus retry and shed counts: the client retries transient
// connection errors and 503 sheds with bounded backoff) goes to stderr
// so stdout stays diffable. -report additionally writes the summary as
// JSON.
//
// -write-frac F mixes durable writes into the served load: that
// fraction of the update-query (3a/3b) requests carries commit=1, so
// the server folds the mutation into its base through the write-ahead
// log before answering. It needs a durable server (coserve -wal); the
// run then reports commit counts and commit-latency percentiles and
// fails if any acknowledged commit is missing from the server's own
// counter (a lost update). Read counters stay bit-identical — commits
// happen after the measured run, on fixed-size update stamps.
//
// -soak D replaces the table run with a sustained open-loop load: a
// stepped rate ramp (-soak-steps rungs climbing to -rate req/s, default
// 50) over the total duration D, gated on zero hard errors, zero
// divergent counter cells (server- and client-side), server RSS
// growth within -soak-rss-mb MiB and — with -write-frac — zero lost
// updates. A failing gate exits non-zero after writing the -report
// file, so CI keeps the evidence.
//
// -faults arms a seeded fault-injection schedule under every local
// engine (see complexobj.ParseFaultPlan for the grammar); in -serve-url
// mode faults are the server's business — start coserve -faults instead.
// Injected faults surface as errors and never alter the counters of
// successful runs, so a table measured under a transient-only schedule
// still diffs clean against the fault-free run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
	"complexobj/internal/profile"
	"complexobj/report"
)

func main() {
	var (
		model     = flag.String("model", "all", "storage model: all, dsm, ddsm, nsm, nsmx, dnsm")
		query     = flag.String("query", "all", "benchmark query: all, 1a, 1b, 1c, 2a, 2b, 3a, 3b")
		n         = flag.Int("n", 1500, "number of stations")
		buffer    = flag.Int("buffer", 1200, "buffer pool pages")
		loops     = flag.Int("loops", 300, "loops for queries 2b/3b")
		samples   = flag.Int("samples", 40, "samples for single-shot queries")
		seed      = flag.Uint64("seed", 1993, "generator seed")
		skew      = flag.Bool("skew", false, "use the data-skew extension (prob 0.2, fanout 8)")
		maxSeeing = flag.Int("maxseeing", 15, "maximum sightseeings per station")
		metric    = flag.String("metric", "pages", "reported metric: pages, calls, fixes or writes")
		workers   = flag.Int("workers", 0, "concurrent model workers (0 = GOMAXPROCS, 1 = serial)")
		backend   = flag.String("backend", "mem", "device backend: mem, file, file:DIR or cow")
		dbPath    = flag.String("db", "", "restore models from this cogen-built .codb snapshot instead of generating")
		repeat    = flag.Int("repeat", 1, "measure the full table this many times (deterministic; printed once)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		serveURL  = flag.String("serve-url", "", "drive a running coserve at this base URL instead of measuring locally")
		clients   = flag.Int("clients", 8, "concurrent closed-loop clients in -serve-url mode")
		rate      = flag.Float64("rate", 0, "open-loop request rate per second in -serve-url mode (0 = closed loop)")
		faults    = flag.String("faults", "", "fault-injection schedule for every local engine, e.g. seed=7,read=0.02,latency=0.05:2ms")
		reportOut = flag.String("report", "", "write a machine-readable JSON run report to this file (-serve-url mode)")
		soak      = flag.Duration("soak", 0, "sustained-load soak of this total duration instead of a table run (-serve-url mode)")
		soakSteps = flag.Int("soak-steps", 4, "rate-ramp steps of the soak (climbing to -rate, default 50 req/s)")
		soakRSS   = flag.Int("soak-rss-mb", 64, "soak gate: server RSS may grow at most this many MiB")
		writeFrac = flag.Float64("write-frac", 0, "fraction of update-query (3a/3b) requests committed durably in -serve-url mode (needs coserve -wal)")
	)
	flag.Parse()

	stopProf, err := profile.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	err = run(*model, *query, *n, *buffer, *loops, *samples, *seed, *skew, *maxSeeing,
		*metric, *workers, *backend, *dbPath, *repeat, *serveURL, *clients, *rate, *faults,
		*reportOut, *soak, *soakSteps, *soakRSS, *writeFrac)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fatal(err)
	}
}

// run does all the work, so the profile writers flush on every exit path
// (os.Exit lives only in main).
func run(model, query string, n, buffer, loops, samples int, seed uint64, skew bool,
	maxSeeing int, metric string, workers int, backend, dbPath string, repeat int,
	serveURL string, clients int, rate float64, faults string,
	reportPath string, soak time.Duration, soakSteps, soakRSSMB int, writeFrac float64) error {

	gen := cobench.DefaultConfig().WithN(n).WithMaxSeeing(maxSeeing)
	gen.Seed = seed
	if skew {
		gen = gen.Skewed()
	}
	w := cobench.Workload{Loops: loops, Samples: samples, Seed: seed}

	models := complexobj.AllModels()
	if model != "all" {
		k, err := complexobj.ModelByName(model)
		if err != nil {
			return err
		}
		models = []complexobj.ModelKind{k}
	}
	queries := cobench.AllQueries()
	if query != "all" {
		q, ok := cobench.QueryByName(query)
		if !ok {
			return fmt.Errorf("unknown query %q", query)
		}
		queries = []cobench.Query{q}
	}
	get, ok := metricFn(metric)
	if !ok {
		return fmt.Errorf("unknown metric %q", metric)
	}
	if repeat < 1 {
		return fmt.Errorf("-repeat %d: need at least one run", repeat)
	}

	if dbPath != "" {
		info, err := complexobj.StatSnapshot(dbPath)
		if err != nil {
			return err
		}
		if info.Gen != gen {
			return fmt.Errorf("snapshot %s was built from %+v, flags request %+v", dbPath, info.Gen, gen)
		}
	}

	t := &report.Table{
		Title:  fmt.Sprintf("measured %s per object/loop (N=%d, buffer=%d pages, loops=%d)", metric, n, buffer, loops),
		Header: []string{"MODEL"},
	}
	for _, q := range queries {
		t.Header = append(t.Header, q.String())
	}
	var (
		rows [][]string
		err  error
	)
	if serveURL != "" {
		if faults != "" {
			return fmt.Errorf("-faults injects under local engines; with -serve-url, arm the server instead (coserve -faults %q)", faults)
		}
		if writeFrac < 0 || writeFrac > 1 {
			return fmt.Errorf("-write-frac %g out of range [0, 1]", writeFrac)
		}
		if soak > 0 {
			// Soak mode replaces the table: the deliverable is the gate
			// verdict (and the -report JSON), not measurements.
			return runSoak(serveURL, models, queries, gen, w, buffer, soak, soakSteps, rate, soakRSSMB, writeFrac, reportPath)
		}
		rows, err = measureServed(serveURL, models, queries, gen, w, buffer, clients, rate, repeat, writeFrac, reportPath, get)
	} else {
		if soak > 0 {
			return fmt.Errorf("-soak drives a running coserve; pass -serve-url")
		}
		if reportPath != "" {
			return fmt.Errorf("-report summarizes served load; pass -serve-url")
		}
		if writeFrac > 0 {
			return fmt.Errorf("-write-frac drives a durable coserve; pass -serve-url")
		}
		plan, perr := complexobj.ParseFaultPlan(faults)
		if perr != nil {
			return perr
		}
		opts := complexobj.Options{BufferPages: buffer, Backend: backend, Faults: plan}
		bases := newBaseCache(dbPath, backend)
		defer bases.Close()
		rows, err = measureModels(models, queries, gen, w, opts, workers, repeat, bases, get)
	}
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	fmt.Println(t.Text())
	return nil
}

// baseCache keeps one frozen complexobj.Base per model for the lifetime
// of the invocation, so that with -db and -backend cow the snapshot arena
// of a model is opened once (mmap'ed read-only where the platform allows)
// and every further run — across -repeat iterations and query loops —
// opens a cheap copy-on-write view instead of re-reading the snapshot.
// With any other flag combination it stays empty and open falls through
// to the regular per-run paths.
type baseCache struct {
	path  string
	share bool
	mu    sync.Mutex
	bases map[complexobj.ModelKind]*complexobj.Base
}

func newBaseCache(dbPath, backend string) *baseCache {
	return &baseCache{
		path:  dbPath,
		share: dbPath != "" && backend == "cow",
		bases: make(map[complexobj.ModelKind]*complexobj.Base),
	}
}

// open returns one measurement-ready database: a COW view of the cached
// base on the shared path, a snapshot restore or a fresh load otherwise.
func (c *baseCache) open(k complexobj.ModelKind, opts complexobj.Options,
	gen cobench.Config) (*complexobj.DB, error) {
	if c.share {
		c.mu.Lock()
		base, ok := c.bases[k]
		if !ok {
			var err error
			if base, err = complexobj.OpenBase(c.path, k); err != nil {
				c.mu.Unlock()
				return nil, err
			}
			c.bases[k] = base
		}
		c.mu.Unlock()
		return base.Open(opts)
	}
	if c.path != "" {
		return complexobj.OpenSnapshot(c.path, k, opts)
	}
	return complexobj.OpenLoaded(k, opts, gen)
}

// Close releases every cached base (dropping snapshot file mappings).
func (c *baseCache) Close() {
	for k, base := range c.bases {
		base.Close()
		delete(c.bases, k)
	}
}

// measureModels runs the selected queries on every model with a bounded
// worker pool, repeat times. Each run opens its own database (independent
// simulated device and buffer pool) — a COW view of the invocation-wide
// cached base, restored from the snapshot, or freshly generated and
// loaded — so no mutable storage state is shared; runs are deterministic
// and identical, and rows come back in model order regardless of
// scheduling.
func measureModels(models []complexobj.ModelKind, queries []cobench.Query,
	gen cobench.Config, w cobench.Workload, opts complexobj.Options,
	workers, repeat int, bases *baseCache,
	get func(complexobj.QueryResult) float64) ([][]string, error) {

	rows := make([][]string, len(models))
	err := fanout.Run(len(models), workers, func(idx int) error {
		k := models[idx]
		for r := 0; r < repeat; r++ {
			db, err := bases.open(k, opts, gen)
			if err != nil {
				return err
			}
			row := []string{k.String()}
			for _, q := range queries {
				res, err := db.Run(q, w)
				if err != nil {
					db.Close()
					return err
				}
				if !res.Supported {
					row = append(row, "-")
					continue
				}
				row = append(row, report.Num(get(res)))
			}
			if err := db.Close(); err != nil {
				return err
			}
			rows[idx] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func metricFn(name string) (func(complexobj.QueryResult) float64, bool) {
	switch name {
	case "pages":
		return func(r complexobj.QueryResult) float64 { return r.Pages }, true
	case "calls":
		return func(r complexobj.QueryResult) float64 { return r.Calls }, true
	case "fixes":
		return func(r complexobj.QueryResult) float64 { return r.Fixes }, true
	case "writes":
		return func(r complexobj.QueryResult) float64 { return r.PagesWritten }, true
	default:
		return nil, false
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobench:", err)
	os.Exit(1)
}
