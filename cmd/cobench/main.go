// Command cobench runs the complex object benchmark (paper §2) against one
// or all storage models and prints the measured I/O statistics.
//
// Usage:
//
//	cobench [-model all|dsm|ddsm|nsm|nsmx|dnsm] [-query all|1a|1b|1c|2a|2b|3a|3b]
//	        [-n 1500] [-buffer 1200] [-loops 300] [-samples 40] [-seed 1993]
//	        [-skew] [-maxseeing 15] [-metric pages|calls|fixes|writes]
//	        [-workers 0] [-backend mem|file|file:DIR|cow] [-db snapshot.codb]
//
// Each storage model owns an independent simulated engine, so the model
// rows are measured concurrently by a bounded worker pool (-workers, 0 =
// GOMAXPROCS); the printed table is identical to a serial run. -backend
// selects where each engine keeps its page images (counters are identical
// across backends); -db restores the models from a cogen-built snapshot
// instead of regenerating and loading the extension.
package main

import (
	"flag"
	"fmt"
	"os"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
	"complexobj/report"
)

func main() {
	var (
		model     = flag.String("model", "all", "storage model: all, dsm, ddsm, nsm, nsmx, dnsm")
		query     = flag.String("query", "all", "benchmark query: all, 1a, 1b, 1c, 2a, 2b, 3a, 3b")
		n         = flag.Int("n", 1500, "number of stations")
		buffer    = flag.Int("buffer", 1200, "buffer pool pages")
		loops     = flag.Int("loops", 300, "loops for queries 2b/3b")
		samples   = flag.Int("samples", 40, "samples for single-shot queries")
		seed      = flag.Uint64("seed", 1993, "generator seed")
		skew      = flag.Bool("skew", false, "use the data-skew extension (prob 0.2, fanout 8)")
		maxSeeing = flag.Int("maxseeing", 15, "maximum sightseeings per station")
		metric    = flag.String("metric", "pages", "reported metric: pages, calls, fixes or writes")
		workers   = flag.Int("workers", 0, "concurrent model workers (0 = GOMAXPROCS, 1 = serial)")
		backend   = flag.String("backend", "mem", "device backend: mem, file, file:DIR or cow")
		dbPath    = flag.String("db", "", "restore models from this cogen-built .codb snapshot instead of generating")
	)
	flag.Parse()

	gen := cobench.DefaultConfig().WithN(*n).WithMaxSeeing(*maxSeeing)
	gen.Seed = *seed
	if *skew {
		gen = gen.Skewed()
	}
	w := cobench.Workload{Loops: *loops, Samples: *samples, Seed: *seed}

	models := complexobj.AllModels()
	if *model != "all" {
		k, err := complexobj.ModelByName(*model)
		if err != nil {
			fatal(err)
		}
		models = []complexobj.ModelKind{k}
	}
	queries := cobench.AllQueries()
	if *query != "all" {
		q, ok := queryByName(*query)
		if !ok {
			fatal(fmt.Errorf("unknown query %q", *query))
		}
		queries = []cobench.Query{q}
	}
	get, ok := metricFn(*metric)
	if !ok {
		fatal(fmt.Errorf("unknown metric %q", *metric))
	}

	if *dbPath != "" {
		info, err := complexobj.StatSnapshot(*dbPath)
		if err != nil {
			fatal(err)
		}
		if info.Gen != gen {
			fatal(fmt.Errorf("snapshot %s was built from %+v, flags request %+v", *dbPath, info.Gen, gen))
		}
	}

	t := &report.Table{
		Title:  fmt.Sprintf("measured %s per object/loop (N=%d, buffer=%d pages, loops=%d)", *metric, *n, *buffer, *loops),
		Header: []string{"MODEL"},
	}
	for _, q := range queries {
		t.Header = append(t.Header, q.String())
	}
	opts := complexobj.Options{BufferPages: *buffer, Backend: *backend}
	rows, err := measureModels(models, queries, gen, w, opts, *dbPath, *workers, get)
	if err != nil {
		fatal(err)
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	fmt.Println(t.Text())
}

// measureModels runs the selected queries on every model with a bounded
// worker pool. Each job opens its own database (independent simulated
// device and buffer pool) — freshly generated and loaded, or restored from
// the snapshot — so no storage state is shared; rows come back in model
// order regardless of scheduling.
func measureModels(models []complexobj.ModelKind, queries []cobench.Query,
	gen cobench.Config, w cobench.Workload, opts complexobj.Options,
	dbPath string, workers int,
	get func(complexobj.QueryResult) float64) ([][]string, error) {

	rows := make([][]string, len(models))
	err := fanout.Run(len(models), workers, func(idx int) error {
		k := models[idx]
		var db *complexobj.DB
		var err error
		if dbPath != "" {
			db, err = complexobj.OpenSnapshot(dbPath, k, opts)
		} else {
			db, err = complexobj.OpenLoaded(k, opts, gen)
		}
		if err != nil {
			return err
		}
		defer db.Close()
		row := []string{k.String()}
		for _, q := range queries {
			res, err := db.Run(q, w)
			if err != nil {
				return err
			}
			if !res.Supported {
				row = append(row, "-")
				continue
			}
			row = append(row, report.Num(get(res)))
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func queryByName(name string) (cobench.Query, bool) {
	for _, q := range cobench.AllQueries() {
		if q.String() == name {
			return q, true
		}
	}
	return 0, false
}

func metricFn(name string) (func(complexobj.QueryResult) float64, bool) {
	switch name {
	case "pages":
		return func(r complexobj.QueryResult) float64 { return r.Pages }, true
	case "calls":
		return func(r complexobj.QueryResult) float64 { return r.Calls }, true
	case "fixes":
		return func(r complexobj.QueryResult) float64 { return r.Fixes }, true
	case "writes":
		return func(r complexobj.QueryResult) float64 { return r.PagesWritten }, true
	default:
		return nil, false
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobench:", err)
	os.Exit(1)
}
