package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
	"complexobj/internal/metrics"
	"complexobj/internal/server"
	"complexobj/report"
)

// servedClient drives one coserve instance.
type servedClient struct {
	base string
	hc   *http.Client

	// retries counts request re-attempts after a transient failure (a
	// transport error or a 503 shed); shed counts the 503 responses the
	// server degraded with. Both go to the stderr report only — stdout
	// stays byte-comparable to the local table.
	retries atomic.Int64
	shed    atomic.Int64

	// hist accumulates per-request end-to-end latency (issue → decoded
	// response) — the same histogram code the server's /metrics runs on,
	// so client- and server-side percentiles are comparable bucket for
	// bucket.
	hist *metrics.Histogram

	// Write mode (-write-frac against a coserve -wal): commitEvery
	// selects every k-th update-query request for durable commit
	// (deterministic, so repeats issue the same write mix); acked counts
	// the commits the server acknowledged, commitHist their server-side
	// latency (the commitMicros field of the response). The lost-update
	// gate compares acked against the server's own commit counter.
	commitEvery int64
	wcount      atomic.Int64
	acked       atomic.Int64
	commitHist  *metrics.Histogram

	// walBefore/walAfter are the server's durability counters sampled
	// around a write-mode run; report() turns the delta into the
	// write-amplification block of the RunReport.
	walBefore, walAfter *server.DurabilityInfo
}

func newServedClient(baseURL string) *servedClient {
	// Pool generously: the default transport keeps only two idle
	// connections per host, so a -clients 32 drive would churn TCP
	// connections on every wave of completions.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &servedClient{
		base:       trimSlash(baseURL),
		hc:         &http.Client{Timeout: 10 * time.Minute, Transport: tr},
		hist:       metrics.NewHistogram(),
		commitHist: metrics.NewHistogram(),
	}
}

// setWriteFrac arms write mode: frac of the update-query (3a/3b)
// requests are sent with commit=1. frac >= 1 commits every one; 0
// disables.
func (c *servedClient) setWriteFrac(frac float64) {
	switch {
	case frac <= 0:
		c.commitEvery = 0
	case frac >= 1:
		c.commitEvery = 1
	default:
		c.commitEvery = int64(1/frac + 0.5)
	}
}

// decideCommit picks whether this request commits: only update queries,
// every commitEvery-th of them. The decision is made once per logical
// request (not per retry attempt), so a retried request keeps its write
// intent.
func (c *servedClient) decideCommit(q cobench.Query) bool {
	if c.commitEvery == 0 || !q.Updates() {
		return false
	}
	return (c.wcount.Add(1)-1)%c.commitEvery == 0
}

// checkServer verifies the server serves the installation the flags
// request — the same extension and the same buffer-pool size — so a
// served table is comparable to the local run cell for cell (hit and fix
// counters depend on the cache capacity as much as on the data).
func (c *servedClient) checkServer(gen cobench.Config, bufferPages int) error {
	resp, err := c.hc.Get(c.base + "/info")
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server /info: %s", resp.Status)
	}
	var info server.InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return fmt.Errorf("server /info: %w", err)
	}
	if info.Gen != gen {
		return fmt.Errorf("server holds %+v, flags request %+v", info.Gen, gen)
	}
	if info.BufferPages != bufferPages {
		return fmt.Errorf("server measures with %d buffer pages, flags request %d (start coserve with -buffer %d or pass -buffer %d)",
			info.BufferPages, bufferPages, bufferPages, info.BufferPages)
	}
	return nil
}

// runOne executes one (model, query) cell on the server with bounded
// retry-with-backoff — transport errors and 503 sheds are transient by
// contract (the server's counters are deterministic, so a retried cell
// measures identically) — and reconstructs the QueryResult the local
// path would have produced. On failure, exhausted reports whether every
// attempt failed retryably (the server shedding load the whole time, a
// capacity signal the soak gate counts separately from hard errors).
func (c *servedClient) runOne(k complexobj.ModelKind, q cobench.Query, w cobench.Workload) (_ complexobj.QueryResult, exhausted bool, _ error) {
	const maxAttempts = 5
	backoff := 50 * time.Millisecond
	commit := c.decideCommit(q)
	for attempt := 1; ; attempt++ {
		res, retryable, err := c.tryOne(k, q, w, commit)
		if err == nil {
			return res, false, nil
		}
		if !retryable || attempt == maxAttempts {
			return complexobj.QueryResult{}, retryable, err
		}
		c.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// tryOne is one attempt of runOne. retryable marks failures worth another
// attempt: connection errors and 503 (the server shedding load, which
// also counts toward the shed column).
func (c *servedClient) tryOne(k complexobj.ModelKind, q cobench.Query, w cobench.Workload, commit bool) (_ complexobj.QueryResult, retryable bool, _ error) {
	spec := server.RunSpecFor(k, q, w)
	if commit {
		spec.Commit = "1"
	}
	params := spec.Values()
	start := time.Now()
	resp, err := c.hc.Get(c.base + "/run?" + params.Encode())
	if err != nil {
		return complexobj.QueryResult{}, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		retryable := resp.StatusCode == http.StatusServiceUnavailable
		if retryable {
			c.shed.Add(1)
		}
		return complexobj.QueryResult{}, retryable, fmt.Errorf("%s %s: %s: %s", k, q, resp.Status, body)
	}
	var rr server.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return complexobj.QueryResult{}, false, fmt.Errorf("%s %s: %w", k, q, err)
	}
	c.hist.Observe(time.Since(start))
	if rr.Committed {
		c.acked.Add(1)
		c.commitHist.Observe(time.Duration(rr.CommitUS) * time.Microsecond)
	}
	res := complexobj.QueryResult{
		Query:     q,
		Model:     k,
		Supported: rr.Supported,
		Units:     rr.Units,
		Raw:       rr.Raw.Stats(),
	}
	rr.PerUnit.Apply(&res)
	return res, false, nil
}

// measureServed builds the measurement table by driving a coserve: the
// same rows as measureModels, with every cell executed server-side on a
// pooled copy-on-write view. Closed loop by default (clients workers,
// each issuing its next request when the previous one answered); rate > 0
// switches to an open loop firing requests at the given rate regardless
// of completions. Rows are deterministic and identical across repeats, so
// the table is filled from whichever repeat answered; the latency report
// goes to stderr (and, with -report, as JSON to a file) so stdout stays
// byte-comparable to the local table.
func measureServed(baseURL string, models []complexobj.ModelKind, queries []cobench.Query,
	gen cobench.Config, w cobench.Workload, bufferPages, clients int, rate float64, repeat int,
	writeFrac float64, reportPath string, get func(complexobj.QueryResult) float64) ([][]string, error) {

	c := newServedClient(baseURL)
	if err := c.checkServer(gen, bufferPages); err != nil {
		return nil, err
	}
	if clients < 1 {
		clients = 1
	}
	c.setWriteFrac(writeFrac)
	var commitsBefore int64
	if writeFrac > 0 {
		d, err := c.serverDurability()
		if err != nil {
			return nil, err
		}
		if d == nil {
			return nil, fmt.Errorf("-write-frac needs a durable server (start coserve -wal)")
		}
		commitsBefore = d.Commits
		c.walBefore = d
	}

	rows := make([][]string, len(models))
	var rowsMu sync.Mutex
	cell := func(mi int, k complexobj.ModelKind, q cobench.Query, qi int) error {
		res, _, err := c.runOne(k, q, w)
		if err != nil {
			return err
		}
		val := "-"
		if res.Supported {
			val = report.Num(get(res))
		}
		rowsMu.Lock()
		if rows[mi] == nil {
			rows[mi] = make([]string, 1+len(queries))
			rows[mi][0] = k.String()
		}
		rows[mi][1+qi] = val
		rowsMu.Unlock()
		return nil
	}

	start := time.Now()
	var err error
	if rate > 0 {
		err = openLoop(models, queries, repeat, rate, cell)
	} else {
		// Closed loop: one task per (model, query, repeat) cell, so the
		// requested client count is actually in flight even when few
		// models are selected (every cell is an independent cold-cache
		// measurement; per-client ordering cannot affect the numbers).
		// Models cycle fastest so concurrent requests spread across
		// models — and, against a router, across shards — instead of
		// arriving in single-model bursts.
		tasks := len(models) * len(queries) * repeat
		if clients > tasks {
			clients = tasks
		}
		err = fanout.Run(tasks, clients, func(i int) error {
			mi := i % len(models)
			qi := (i / len(models)) % len(queries)
			return cell(mi, models[mi], queries[qi], qi)
		})
	}
	if err != nil {
		return nil, err
	}
	if writeFrac > 0 {
		d, err := c.serverDurability()
		if err != nil {
			return nil, err
		}
		c.walAfter = d
	}
	if err := c.report(os.Stderr, time.Since(start), clients, rate, reportPath); err != nil {
		return nil, err
	}
	if writeFrac > 0 {
		if err := c.commitVerdict(os.Stderr, commitsBefore); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// serverDurability reads the server's durability block from /info (nil
// when the server runs without a write-ahead log).
func (c *servedClient) serverDurability() (*server.DurabilityInfo, error) {
	var info server.InfoResponse
	if err := c.getJSON("/info", &info); err != nil {
		return nil, err
	}
	return info.Durability, nil
}

// walDelta is the run's write-ahead-log traffic: the difference between
// the durability counters sampled before and after the run. Nil outside
// write mode (or when the samples are missing).
func (c *servedClient) walDelta() *WALReport {
	if c.walBefore == nil || c.walAfter == nil {
		return nil
	}
	d := &WALReport{
		AppendedBytes: c.walAfter.AppendedBytes - c.walBefore.AppendedBytes,
		PayloadBytes:  c.walAfter.PayloadBytes - c.walBefore.PayloadBytes,
		Syncs:         c.walAfter.Syncs - c.walBefore.Syncs,
	}
	if d.PayloadBytes > 0 {
		d.WriteAmplification = float64(d.AppendedBytes) / float64(d.PayloadBytes)
	}
	return d
}

// serverCommits reads the server's acknowledged-commit counter from
// /info (durable=false when the server runs without a write-ahead log).
func (c *servedClient) serverCommits() (commits int64, durable bool, _ error) {
	d, err := c.serverDurability()
	if err != nil {
		return 0, false, err
	}
	if d == nil {
		return 0, false, nil
	}
	return d.Commits, true, nil
}

// commitVerdict prints the write-mode summary and enforces the
// lost-update gate: every commit the server acknowledged to this client
// must be reflected in the server's own commit counter. The server delta
// may exceed the acked count (a retried request can commit twice after a
// lost acknowledgment) — only the other direction is an error.
func (c *servedClient) commitVerdict(w io.Writer, commitsBefore int64) error {
	after, durable, err := c.serverCommits()
	if err != nil {
		return err
	}
	acked := c.acked.Load()
	delta := after - commitsBefore
	lost := acked - delta
	if !durable || lost < 0 {
		lost = 0
	}
	s := metrics.Summarize(c.commitHist.Snapshot())
	fmt.Fprintf(w, "commits: %d acknowledged, server delta %d, lost %d, commit latency p50 %s / p99 %s / max %s\n",
		acked, delta, lost,
		micros(float64(s.P50Micros)), micros(float64(s.P99Micros)), micros(float64(s.MaxMicros)))
	if d := c.walDelta(); d != nil && d.PayloadBytes > 0 {
		fmt.Fprintf(w, "wal: %d B appended for %d B of page payload (%.2fx write amplification, %d syncs)\n",
			d.AppendedBytes, d.PayloadBytes, d.WriteAmplification, d.Syncs)
	}
	if lost > 0 {
		return fmt.Errorf("lost updates: %d acknowledged commits are missing from the server's counter (%d acked, server delta %d)",
			lost, acked, delta)
	}
	return nil
}

// openLoop fires every (model, query, repeat) request at a fixed rate,
// each in its own goroutine — in-flight count is unbounded, as an open
// loop must be. The first error is reported after all requests finish.
func openLoop(models []complexobj.ModelKind, queries []cobench.Query, repeat int,
	rate float64, cell func(mi int, k complexobj.ModelKind, q cobench.Query, qi int) error) error {

	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 { // -rate above 1e9 (or +Inf) truncates to 0, which NewTicker rejects
		interval = time.Nanosecond
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for r := 0; r < repeat; r++ {
		for mi := range models {
			for qi := range queries {
				<-tick.C
				wg.Add(1)
				go func(mi, qi int) {
					defer wg.Done()
					if err := cell(mi, models[mi], queries[qi], qi); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}(mi, qi)
			}
		}
	}
	wg.Wait()
	return firstErr
}

// report prints the latency/throughput summary to w (stderr, so stdout
// stays byte-comparable to the local table) and, when reportPath is
// non-empty, writes the machine-readable RunReport there. Both render
// the same histogram summary — one reporting path.
func (c *servedClient) report(w io.Writer, wall time.Duration, clients int, rate float64, reportPath string) error {
	snap := c.hist.Snapshot()
	if snap.Count == 0 {
		return nil
	}
	s := metrics.Summarize(snap)
	mode := fmt.Sprintf("closed loop, %d clients", clients)
	if rate > 0 {
		mode = fmt.Sprintf("open loop, %.1f req/s", rate)
	}
	fmt.Fprintf(w, "served %d requests in %v (%s): %.1f req/s, latency min %s / mean %s / p50 %s / p90 %s / p99 %s / p99.9 %s / max %s, retries %d, shed %d\n",
		snap.Count, wall.Round(time.Millisecond), mode,
		float64(snap.Count)/wall.Seconds(),
		micros(float64(s.MinMicros)), micros(s.MeanMicros),
		micros(float64(s.P50Micros)), micros(float64(s.P90Micros)),
		micros(float64(s.P99Micros)), micros(float64(s.P999Micros)),
		micros(float64(s.MaxMicros)),
		c.retries.Load(), c.shed.Load())
	if reportPath == "" {
		return nil
	}
	rep := RunReport{
		Mode:        "closed",
		WallSeconds: wall.Seconds(),
		Clients:     clients,
		RateTarget:  rate,
		Requests:    snap.Count,
		Throughput:  float64(snap.Count) / wall.Seconds(),
		Retries:     c.retries.Load(),
		Shed:        c.shed.Load(),
		Latency:     s,
	}
	if rate > 0 {
		rep.Mode = "open"
	}
	if acked := c.acked.Load(); acked > 0 {
		rep.Commits = acked
		cl := metrics.Summarize(c.commitHist.Snapshot())
		rep.CommitLatency = &cl
	}
	if w := c.walDelta(); w != nil {
		rep.WAL = w
	}
	return writeReport(reportPath, &rep)
}

// micros renders a microsecond figure as a duration string (the stderr
// line's human units).
func micros(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(time.Microsecond).String()
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}
