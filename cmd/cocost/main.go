// Command cocost explores the analytical cost model (paper §3-4): it
// prints the Table 3 estimates for the paper's layout constants and any
// workload variation, plus individual equation evaluations.
//
// Usage:
//
//	cocost [-n 1500] [-loops 300] [-children 4.096]
//	cocost -eq bernstein -t 21.7 -m 116
//	cocost -eq distinct  -t 6519 -m 1500
//	cocost -eq cluster   -g 4.1  -k 11
//	cocost -eq yao       -t 100  -ntuples 1500 -k 13
package main

import (
	"flag"
	"fmt"
	"os"

	"complexobj/costmodel"
	"complexobj/experiments"
)

func main() {
	var (
		n        = flag.Int("n", 1500, "database size (objects)")
		loops    = flag.Int("loops", 300, "loops for queries 2b/3b")
		children = flag.Float64("children", 4.096, "average children per object")
		eq       = flag.String("eq", "", "evaluate one equation: bernstein, distinct, cluster, clusters, yao")
		tParam   = flag.Float64("t", 0, "tuple/draw count (bernstein, distinct, yao)")
		mParam   = flag.Float64("m", 0, "page/object count (bernstein, distinct, clusters)")
		gParam   = flag.Float64("g", 0, "cluster size (cluster, clusters)")
		kParam   = flag.Float64("k", 0, "tuples per page (cluster, clusters, yao)")
		iParam   = flag.Float64("i", 1, "number of clusters (clusters)")
		ntuples  = flag.Int("ntuples", 0, "relation tuple count (yao)")
		calls    = flag.Bool("calls", false, "also print the analytical I/O-call estimates")
	)
	flag.Parse()

	if *eq != "" {
		evalEquation(*eq, *tParam, *mParam, *gParam, *kParam, *iParam, *ntuples)
		return
	}

	w := costmodel.PaperWorkload()
	w.N = float64(*n)
	w.Loops = float64(*loops)
	w.Children = *children
	w.Grand = *children * *children
	params := costmodel.PaperParams().Scaled(w.N, costmodel.PaperWorkload().N)
	rows := costmodel.EstimateAll(params, w)
	title := fmt.Sprintf("Table 3 (paper layout constants, N=%d, loops=%d): estimated page I/Os", *n, *loops)
	fmt.Println(experiments.RenderTable3(title, rows).Text())
	if *calls {
		crows := costmodel.EstimateAllCalls(params, w)
		fmt.Println(experiments.RenderTable3("Analytical I/O calls (Equation 1's X_calls)", crows).Text())
	}
}

func evalEquation(eq string, t, m, g, k, i float64, ntuples int) {
	switch eq {
	case "bernstein":
		fmt.Printf("Eq. 4 (Bernstein): %g tuples over %g pages -> %.4f pages\n",
			t, m, costmodel.Bernstein(t, m))
	case "distinct":
		fmt.Printf("Eq. 8 (cache): %g draws from %g objects -> %.4f distinct\n",
			t, m, costmodel.Distinct(m, t))
	case "cluster":
		fmt.Printf("Eq. 6 (cluster span): %g tuples at k=%g -> %.4f pages\n",
			g, k, costmodel.ClusterSpan(g, k))
	case "clusters":
		fmt.Printf("Eq. 7 (clusters): %g clusters of %g tuples on %g pages (k=%g) -> %.4f pages\n",
			i, g, m, k, costmodel.Clusters(i, g, m, k))
	case "yao":
		fmt.Printf("Yao: %d of %d tuples at k=%d -> %.4f pages\n",
			int(t), ntuples, int(k), costmodel.Yao(int(t), ntuples, int(k)))
	default:
		fmt.Fprintf(os.Stderr, "cocost: unknown equation %q\n", eq)
		os.Exit(1)
	}
}
