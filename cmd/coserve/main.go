// Command coserve is the long-lived benchmark server: it loads one shared
// base per storage model from a cogen-built .codb snapshot (mmap'ed
// read-only in place where the platform allows) and serves benchmark
// query requests over HTTP/JSON, each on a throwaway copy-on-write view
// from a bounded per-model pool.
//
// Usage:
//
//	coserve -db bench.codb [-addr :8077] [-buffer 1200] [-views 8]
//	        [-model all] [-loops 300] [-samples 40] [-seed 1993]
//	        [-max-inflight 0] [-request-timeout 0] [-faults SPEC]
//	        [-wal DIR] [-checkpoint-mb 64]
//	        [-shard-map bench.shards.json] [-shards 0,1]
//
// Endpoints: /run, /stats, /info, /healthz, /metrics (see
// internal/server; /metrics is Prometheus text exposition — serving
// counters, view-pool occupancy, process memory and per-cell latency
// split into queue wait and service time; scraping it never moves a
// /stats counter). Drive it with cobench -serve-url; the served counters
// are bit-identical to the local batch run with the same flags.
//
// -max-inflight bounds admitted requests across every model (0: twice
// the summed view bound, negative: unbounded) and -request-timeout
// deadlines each request end to end; beyond either budget the server
// degrades gracefully with 503 + Retry-After instead of queueing without
// bound. -faults arms a seeded fault-injection schedule under every view
// engine (see complexobj.ParseFaultPlan for the grammar) — injected
// faults surface as structured errors and never alter the counters of
// successful responses.
//
// -wal DIR arms the durable commit path: served bases open from the
// directory's checkpoint sidecars (the snapshot seeds the first start),
// the write-ahead log replays on startup, and /run requests carrying
// commit=1 fold their update-query mutations into the served base — the
// response is written only after the fsync acknowledged the batch. A
// kill -9 at any point recovers to exactly the last acknowledged commit.
// -checkpoint-mb compacts the log whenever it outgrows that size (0:
// never). Read-path counters are unaffected: a -wal server measures
// bit-identically to a read-only one.
//
// -shard-map makes the process one backend of a scale-out deployment
// (cogen -split built the map and the per-shard .codb segments): it
// serves only the models its shards own, out of their segments, and
// rejects out-of-shard models with 421 Misdirected Request — the signal
// the coshard router re-routes on. -shards picks the owned shard IDs
// (default: all of them); ownership moves at runtime through POST
// /shards/acquire and /shards/release, which is how a segment hands off
// between two live backends without copying a byte. Counters stay
// bit-identical to unsharded serving: sharding partitions the model set,
// and no query crosses models.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"complexobj"
	"complexobj/internal/server"
)

func main() {
	var (
		dbPath     = flag.String("db", "", "cogen-built .codb snapshot to serve (required)")
		addr       = flag.String("addr", ":8077", "listen address")
		buffer     = flag.Int("buffer", 1200, "buffer pool pages per view")
		views      = flag.Int("views", 8, "max concurrent views (requests) per model")
		model      = flag.String("model", "all", "served models: all, or one of dsm, ddsm, nsm, nsmx, dnsm")
		loops      = flag.Int("loops", 300, "default loops for queries 2b/3b")
		samples    = flag.Int("samples", 40, "default samples for single-shot queries")
		seed       = flag.Uint64("seed", 1993, "default workload seed")
		maxInFl    = flag.Int("max-inflight", 0, "server-wide admitted-request bound (0: 2x the summed view bound, <0: unbounded)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline across admission, view acquire and execution (0: none)")
		faults     = flag.String("faults", "", "fault-injection schedule for every view engine, e.g. seed=7,read=0.02,latency=0.05:2ms")
		walDir     = flag.String("wal", "", "write-ahead-log directory arming durable commits (empty: read-only serving)")
		ckptMB     = flag.Int64("checkpoint-mb", 64, "checkpoint the write-ahead log when it exceeds this many MiB (0: never; needs -wal)")
		shardMap   = flag.String("shard-map", "", "shard-map file (cogen -split) turning the process into one scale-out backend")
		shards     = flag.String("shards", "", "comma-separated shard IDs owned at startup (empty with -shard-map: all)")
	)
	flag.Parse()
	if err := run(*dbPath, *addr, *buffer, *views, *model, *loops, *samples, *seed, *maxInFl, *reqTimeout, *faults, *walDir, *ckptMB, *shardMap, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "coserve:", err)
		os.Exit(1)
	}
}

func run(dbPath, addr string, buffer, views int, model string, loops, samples int, seed uint64,
	maxInflight int, reqTimeout time.Duration, faults, walDir string, ckptMB int64, shardMap, shards string) error {
	if dbPath == "" && shardMap == "" {
		return fmt.Errorf("-db is required (build one with: cogen -db bench.codb)")
	}
	plan, err := complexobj.ParseFaultPlan(faults)
	if err != nil {
		return err
	}
	if ckptMB < 0 {
		return fmt.Errorf("-checkpoint-mb %d is negative", ckptMB)
	}
	cfg := server.Config{
		Snapshot:        dbPath,
		BufferPages:     buffer,
		MaxViews:        views,
		MaxInflight:     maxInflight,
		RequestTimeout:  reqTimeout,
		Faults:          plan,
		WALDir:          walDir,
		CheckpointBytes: ckptMB << 20,
		ShardMap:        shardMap,
	}
	cfg.Workload.Loops = loops
	cfg.Workload.Samples = samples
	cfg.Workload.Seed = seed
	if model != "all" {
		k, err := complexobj.ModelByName(model)
		if err != nil {
			return err
		}
		cfg.Models = []complexobj.ModelKind{k}
	}
	if shards != "" {
		if shardMap == "" {
			return fmt.Errorf("-shards needs -shard-map")
		}
		for _, f := range strings.Split(shards, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("-shards: bad shard ID %q", f)
			}
			cfg.Shards = append(cfg.Shards, id)
		}
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	info := srv.Info()
	source := dbPath
	if shardMap != "" {
		source = shardMap
	}
	fmt.Printf("coserve: serving %s (N=%d, seed=%d, page %d B) on %s\n",
		source, info.Gen.N, info.Gen.Seed, info.PageSize, addr)
	fmt.Printf("coserve: %d models, %.1f MiB shared arenas, %d views x %d buffer pages per model\n",
		len(info.Models), float64(srv.TotalArenaBytes())/(1<<20), views, buffer)
	if shardMap != "" {
		fmt.Printf("coserve: sharded backend, shards %s of %s\n", shardString(shards), shardMap)
	}
	if maxInflight >= 0 || reqTimeout > 0 {
		fmt.Printf("coserve: admission bound %s, request timeout %s\n",
			boundString(maxInflight), timeoutString(reqTimeout))
	}
	if plan != nil {
		fmt.Printf("coserve: fault injection armed: %s\n", plan)
	}
	if walDir != "" {
		fmt.Printf("coserve: durable commits armed: wal %s, checkpoint at %d MiB\n", walDir, ckptMB)
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("coserve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return nil
}

// boundString renders the -max-inflight value ("auto" for 0, which the
// server resolves to twice the summed view bound).
func boundString(n int) string {
	if n == 0 {
		return "auto"
	}
	return strconv.Itoa(n)
}

// shardString renders the -shards value ("all" for empty).
func shardString(s string) string {
	if s == "" {
		return "all"
	}
	return s
}

// timeoutString renders the -request-timeout value ("none" for 0).
func timeoutString(d time.Duration) string {
	if d <= 0 {
		return "none"
	}
	return d.String()
}
