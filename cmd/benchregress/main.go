// benchregress compares a `go test -bench -benchmem` run against a
// committed baseline and fails when allocs/op regresses. Wall-clock
// numbers are reported but never gated: time is noisy on shared CI
// machines, while allocation counts on the fix hit/miss paths are
// deterministic and must stay pinned.
//
// Usage:
//
//	benchregress -baseline ci/bench-baseline.txt current.txt
//	go test ./internal/buffer -bench . -benchmem | benchregress -baseline ci/bench-baseline.txt -
//
// Rules:
//   - allocs/op may grow at most -tolerance percent (default 10) over
//     the baseline value;
//   - a baseline of 0 allocs/op is a hard pin: any nonzero count fails;
//   - benchmarks present in the baseline but missing from the current
//     run fail (a silently dropped benchmark is not an improvement);
//   - new benchmarks absent from the baseline are reported, not gated.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasAllocs   bool
}

// benchLine matches one benchmark result, e.g.
//
//	BenchmarkFixHit-4   10000   48.12 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func parse(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := result{}
		res.nsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			res.bytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			res.allocsPerOp, _ = strconv.ParseFloat(m[4], 64)
			res.hasAllocs = true
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]result, error) {
	if path == "-" {
		return parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline bench output")
	tolerance := flag.Float64("tolerance", 10, "allowed allocs/op growth in percent")
	flag.Parse()
	if *baselinePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchregress -baseline FILE (CURRENT|-)")
		os.Exit(2)
	}
	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(2)
	}
	current, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintln(os.Stderr, "benchregress: baseline holds no benchmark lines")
		os.Exit(2)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("FAIL %s: present in baseline, missing from current run\n", name)
			failed = true
			continue
		}
		if !base.hasAllocs || !cur.hasAllocs {
			fmt.Printf("  ok %s: no -benchmem columns, time-only (%.1f ns/op vs %.1f baseline)\n",
				name, cur.nsPerOp, base.nsPerOp)
			continue
		}
		switch {
		case base.allocsPerOp == 0 && cur.allocsPerOp > 0:
			fmt.Printf("FAIL %s: %.0f allocs/op, baseline pins 0\n", name, cur.allocsPerOp)
			failed = true
		case cur.allocsPerOp > base.allocsPerOp*(1+*tolerance/100):
			fmt.Printf("FAIL %s: %.0f allocs/op, baseline %.0f (+%.1f%% > %.0f%% tolerance)\n",
				name, cur.allocsPerOp, base.allocsPerOp,
				100*(cur.allocsPerOp-base.allocsPerOp)/base.allocsPerOp, *tolerance)
			failed = true
		default:
			fmt.Printf("  ok %s: %.0f allocs/op (baseline %.0f), %.0f B/op, %.1f ns/op\n",
				name, cur.allocsPerOp, base.allocsPerOp, cur.bytesPerOp, cur.nsPerOp)
		}
	}
	var fresh []string
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Printf(" new %s: not in baseline (add it to ci/bench-baseline.txt)\n", name)
	}
	if failed {
		fmt.Println(strings.Repeat("-", 40))
		fmt.Println("allocs/op regression detected")
		os.Exit(1)
	}
}
