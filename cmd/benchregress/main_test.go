package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: complexobj/internal/buffer
BenchmarkFixHit-4        	24428716	        48.12 ns/op	       0 B/op	       0 allocs/op
BenchmarkFixRunMiss      	 1000000	      1173 ns/op	     272 B/op	       1 allocs/op
BenchmarkTimeOnly-8      	     100	    500000 ns/op
PASS
`
	got, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	hit, ok := got["BenchmarkFixHit"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if !hit.hasAllocs || hit.allocsPerOp != 0 || hit.bytesPerOp != 0 {
		t.Errorf("FixHit parsed as %+v", hit)
	}
	miss := got["BenchmarkFixRunMiss"]
	if miss.allocsPerOp != 1 || miss.bytesPerOp != 272 || miss.nsPerOp != 1173 {
		t.Errorf("FixRunMiss parsed as %+v", miss)
	}
	if to := got["BenchmarkTimeOnly"]; to.hasAllocs || to.nsPerOp != 500000 {
		t.Errorf("TimeOnly parsed as %+v", to)
	}
}
