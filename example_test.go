package complexobj_test

import (
	"fmt"

	"complexobj"
	"complexobj/cobench"
	"complexobj/costmodel"
)

// Example demonstrates the core loop of the library: load a benchmark
// extension under a storage model, navigate the object graph, and read
// the paper's I/O metrics.
func Example() {
	gen := cobench.DefaultConfig().WithN(100)
	db, err := complexobj.OpenLoaded(complexobj.DASDBSNSM, complexobj.Options{BufferPages: 256}, gen)
	if err != nil {
		panic(err)
	}
	_, children, err := db.Navigate(0)
	if err != nil {
		panic(err)
	}
	s := db.Stats()
	fmt.Printf("navigated to %d children with %d page reads in %d calls\n",
		len(children), s.PagesRead, s.ReadCalls)
	// Output:
	// navigated to 7 children with 2 page reads in 2 calls
}

// ExampleDB_Run executes one of the paper's benchmark queries and prints
// the normalized measurement.
func ExampleDB_Run() {
	db, err := complexobj.OpenLoaded(complexobj.DSM, complexobj.Options{},
		cobench.DefaultConfig().WithN(200))
	if err != nil {
		panic(err)
	}
	res, err := db.Run(cobench.Q1c, cobench.Workload{Loops: 40, Samples: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("query %s scanned %d objects\n", res.Query, int(res.Units))
	// Output:
	// query 1c scanned 200 objects
}

// ExampleEstimate evaluates the paper's analytical cost model: the DSM row
// of Table 3 under the published layout constants.
func ExampleEstimate() {
	est := costmodel.Estimate(costmodel.DSM, costmodel.PaperParams(), costmodel.PaperWorkload())
	fmt.Printf("DSM query 1a: %.2f pages per object\n", est.Q1a)
	fmt.Printf("DSM query 2b: %.1f pages per loop\n", est.Q2b)
	// Output:
	// DSM query 1a: 4.00 pages per object
	// DSM query 2b: 19.7 pages per loop
}
