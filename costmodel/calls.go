package costmodel

import "math"

// EstimateCalls computes the analytical number of I/O calls X_calls per
// query — the second input of Equation 1, complementing the page counts of
// Estimate. The call model follows the DASDBS behaviour the paper
// describes in §5.2:
//
//   - direct storage models fetch a large object with separate calls for
//     the header page and the (contiguous) data run: two calls per touched
//     object, which yields the observed "about 2 pages ... per I/O call";
//   - the normalized models access tuples page-at-a-time, one call per
//     page ("NSM even reads only a single page per retrieval call"), so
//     their call counts equal their page counts;
//   - batched writes (replace-set-of-tuples) cost about one call per
//     contiguous object run, while DASDBS-DSM's write-through page pool
//     costs one call per update operation.
//
// Like Estimate, all values are best case (Equation 8 for loop queries,
// no cache overflow).
func EstimateCalls(m Model, p Params, w Workload) QueryEstimates {
	e := QueryEstimates{Model: m}
	opl := w.ObjectsPerLoop()
	dAll := Distinct(w.N, w.Loops*opl)
	dGrand := Distinct(w.N, w.Loops*w.Grand)

	switch m {
	case DSM, DSMPrime:
		// Header call + data-run call per touched object.
		const perObject = 2
		e.Q1a = perObject
		e.Q1b = perObject * w.N
		e.Q1c = perObject
		e.Q2a = perObject * opl
		e.Q2b = perObject * dAll / w.Loops
		// Replace-set writes: one contiguous write call per object.
		e.Q3a = e.Q2a + w.Grand
		e.Q3b = e.Q2b + dGrand/w.Loops

	case DASDBSDSM:
		const perObject = 2 // header call + needed-data call
		e.Q1a = perObject
		e.Q1b = perObject * w.N
		e.Q1c = perObject
		e.Q2a = perObject * opl
		e.Q2b = perObject * dAll / w.Loops
		// Write-through page pool: one call per update operation, every
		// loop (no batching across loops).
		e.Q3a = e.Q2a + w.Grand
		e.Q3b = e.Q2b + w.Grand

	case NSM, NSMIndex, DASDBSNSM:
		// One call per page: calls equal the page estimates. (The single
		// large tuple of DASDBS-NSM's sightseeing relation adds a header/
		// data split only on whole-object queries, where its page count
		// already reflects both pages.)
		pages := Estimate(m, p, w)
		e = pages
		e.Model = m
	}
	if m == NSM {
		e.Q1a = math.NaN()
	}
	return e
}

// EstimateAllCalls returns the call estimates for every model row.
func EstimateAllCalls(p Params, w Workload) []QueryEstimates {
	out := make([]QueryEstimates, 0, len(AllModels()))
	for _, m := range AllModels() {
		out = append(out, EstimateCalls(m, p, w))
	}
	return out
}

// EstimateCost folds the page and call estimates into Equation 1 for a
// device with per-call cost d1 and per-page cost d2, returning the
// estimated device cost per query unit (the paper defines the equation but
// never evaluates it; see also experiments.TableCosts for the measured
// counterpart).
func EstimateCost(m Model, p Params, w Workload, d1, d2 float64) QueryEstimates {
	pages := Estimate(m, p, w)
	calls := EstimateCalls(m, p, w)
	return QueryEstimates{
		Model: m,
		Q1a:   WeightedCost(d1, d2, calls.Q1a, pages.Q1a),
		Q1b:   WeightedCost(d1, d2, calls.Q1b, pages.Q1b),
		Q1c:   WeightedCost(d1, d2, calls.Q1c, pages.Q1c),
		Q2a:   WeightedCost(d1, d2, calls.Q2a, pages.Q2a),
		Q2b:   WeightedCost(d1, d2, calls.Q2b, pages.Q2b),
		Q3a:   WeightedCost(d1, d2, calls.Q3a, pages.Q3a),
		Q3b:   WeightedCost(d1, d2, calls.Q3b, pages.Q3b),
	}
}
