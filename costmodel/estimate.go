package costmodel

import "math"

// QueryEstimates holds the analytical page-I/O numbers for one storage
// model: queries 1a-1c are per object, 2a-3b per loop (the normalization
// of Table 3). NaN marks a query the model cannot run (pure NSM has no
// identifiers, so query 1a "is not relevant").
type QueryEstimates struct {
	Model Model
	Q1a   float64
	Q1b   float64
	Q1c   float64
	Q2a   float64
	Q2b   float64
	Q3a   float64
	Q3b   float64
}

// ByQuery returns the estimate for the query labelled as in the paper
// ("1a".."3b"); ok is false for unknown labels.
func (e QueryEstimates) ByQuery(label string) (float64, bool) {
	switch label {
	case "1a":
		return e.Q1a, true
	case "1b":
		return e.Q1b, true
	case "1c":
		return e.Q1c, true
	case "2a":
		return e.Q2a, true
	case "2b":
		return e.Q2b, true
	case "3a":
		return e.Q3a, true
	case "3b":
		return e.Q3b, true
	default:
		return 0, false
	}
}

// Estimate computes the Table 3 row of one storage model under the given
// layout parameters and workload. All estimates are best case: "Since we
// assumed a large cache, all estimates are best case" (§4); cache effects
// across loops are modelled with Equation 8 only (an object's pages are
// fetched once), never cache overflow.
func Estimate(m Model, p Params, w Workload) QueryEstimates {
	e := QueryEstimates{Model: m}
	opl := w.ObjectsPerLoop()
	nav := 1 + w.Children // objects whose children are resolved per loop
	// Distinct objects touched across all loops (Equation 8), by role.
	dAll := Distinct(w.N, w.Loops*opl)
	dNav := Distinct(w.N, w.Loops*nav)
	dGrand := Distinct(w.N, w.Loops*w.Grand)

	switch m {
	case DSM, DSMPrime:
		pp, mm := p.DirectP, p.DirectM
		if m == DSMPrime {
			pp, mm = p.DirectUsefulP, p.DirectUsefulM
		}
		e.Q1a = pp
		e.Q1b = mm
		e.Q1c = pp
		e.Q2a = LargeEntire(opl, pp)
		e.Q2b = LargeEntire(dAll, pp) / w.Loops
		e.Q3a = e.Q2a + LargeEntire(w.Grand, pp)
		e.Q3b = e.Q2b + LargeEntire(dGrand, pp)/w.Loops

	case DASDBSDSM:
		e.Q1a = p.DirectUsefulP
		e.Q1b = p.DirectUsefulM
		e.Q1c = p.DirectUsefulP
		// Queries 2/3 need only "the header page and a single data page"
		// per touched object (Equation 5 with one used cluster).
		e.Q2a = LargePartial(opl, 1, p.DirectNavP-1)
		e.Q2b = LargePartial(dAll, 1, p.DirectNavP-1) / w.Loops
		// The Table 3 estimate assumes the root data page is rewritten per
		// updated object; the measured §5.3 page-pool anomaly exceeds it.
		e.Q3a = e.Q2a + w.Grand
		e.Q3b = e.Q2b + dGrand/w.Loops

	case NSM, NSMIndex:
		st, pl, co, se := p.NSMStation, p.NSMPlatform, p.NSMConnection, p.NSMSightseeing
		// One object's tuples fetched by address: one page for the root
		// tuple plus the expected cluster span per sub-relation (Eq. 6);
		// paper value 5.96.
		fetchOne := 1 + ClusterSpan(pl.PerObject, pl.K) +
			ClusterSpan(co.PerObject, co.K) + ClusterSpan(se.PerObject, se.K)
		if m == NSM {
			e.Q1a = math.NaN()
			e.Q1b = p.NSMTotalM() // no addressing: scan all four relations
		} else {
			e.Q1a = fetchOne
			// Scan the root relation for the value selection (its page
			// with the match is already in), then fetch the rest by
			// address; paper value 121.
			e.Q1b = st.M + fetchOne - 1
		}
		e.Q1c = p.NSMTotalM() / w.N
		// Navigation touches root tuples of every object (Eq. 4) and the
		// connection clusters of the navigated objects (Eq. 7); pure NSM
		// additionally joins through the platform clusters.
		roots2a := Bernstein(opl, st.M)
		conns2a := Clusters(nav, co.PerObject, co.M, co.K)
		plats2a := Clusters(nav, pl.PerObject, pl.M, pl.K)
		rootsB := Bernstein(dAll, st.M)
		connsB := Clusters(dNav, co.PerObject, co.M, co.K)
		platsB := Clusters(dNav, pl.PerObject, pl.M, pl.K)
		if m == NSM {
			e.Q2a = roots2a + plats2a + conns2a
			e.Q2b = (rootsB + platsB + connsB) / w.Loops
		} else {
			e.Q2a = roots2a + conns2a
			e.Q2b = (rootsB + connsB) / w.Loops
		}
		// Updates rewrite root tuples; many share a page (Eq. 4 on the
		// root relation — the paper's 0.387 writes/loop).
		e.Q3a = e.Q2a + Bernstein(w.Grand, st.M)
		e.Q3b = e.Q2b + Bernstein(dGrand, st.M)/w.Loops

	case DASDBSNSM:
		st, co := p.DNSMStation, p.DNSMConnection
		e.Q1a = p.DNSMFetchPages()
		e.Q1b = st.M + p.DNSMFetchPages() - 1
		e.Q1c = p.DNSMTotalM() / w.N
		// Navigation: root tuples (Eq. 4 on the root relation) plus one
		// nested connection tuple per navigated object; platform and
		// sightseeing relations are never touched.
		e.Q2a = Bernstein(opl, st.M) + Bernstein(nav, co.M)
		e.Q2b = (Bernstein(dAll, st.M) + Bernstein(dNav, co.M)) / w.Loops
		e.Q3a = e.Q2a + Bernstein(w.Grand, st.M)
		e.Q3b = e.Q2b + Bernstein(dGrand, st.M)/w.Loops
	}
	return e
}

// EstimateAll returns the full Table 3: one row per model.
func EstimateAll(p Params, w Workload) []QueryEstimates {
	out := make([]QueryEstimates, 0, len(AllModels()))
	for _, m := range AllModels() {
		out = append(out, Estimate(m, p, w))
	}
	return out
}

// Scaled returns the parameter set for a database of n objects instead of
// base objects: every relation's page count scales linearly with the
// extension size while the per-tuple geometry (k, p) is unchanged. Used by
// the Figure 6 database-size sweep.
func (p Params) Scaled(n, base float64) Params {
	if base <= 0 || n <= 0 {
		return p
	}
	f := n / base
	scale := func(m float64) float64 { return math.Max(1, math.Round(m*f)) }
	q := p
	q.DirectM = scale(p.DirectM)
	q.DirectUsefulM = scale(p.DirectUsefulM)
	q.NSMStation.M = scale(p.NSMStation.M)
	q.NSMPlatform.M = scale(p.NSMPlatform.M)
	q.NSMConnection.M = scale(p.NSMConnection.M)
	q.NSMSightseeing.M = scale(p.NSMSightseeing.M)
	q.DNSMStation.M = scale(p.DNSMStation.M)
	q.DNSMPlatform.M = scale(p.DNSMPlatform.M)
	q.DNSMConnection.M = scale(p.DNSMConnection.M)
	q.DNSMSightseeing.M = scale(p.DNSMSightseeing.M)
	return q
}

// BestCaseQ2b returns the Figure 6 best-case line: the query 2b estimate
// for a database of n objects (loops = n/5), assuming no cache overflow.
func BestCaseQ2b(m Model, p Params, n int) float64 {
	w := WorkloadFor(n)
	scaled := p.Scaled(w.N, PaperWorkload().N)
	return Estimate(m, scaled, w).Q2b
}

// WorstCaseQ2b returns the Figure 6 worst-case line: "we may regard the
// analytically calculated value for query 2a ... as a worst case estimate
// for query 2b", i.e. no cache hits across loops at all.
func WorstCaseQ2b(m Model, p Params, n int) float64 {
	w := WorkloadFor(n)
	scaled := p.Scaled(w.N, PaperWorkload().N)
	return Estimate(m, scaled, w).Q2a
}
