package costmodel

import (
	"math"
	"testing"
)

func TestEstimateCallsDirect(t *testing.T) {
	p, w := PaperParams(), PaperWorkload()
	dsm := EstimateCalls(DSM, p, w)
	// Two calls per object: header + data run.
	approx(t, "DSM 1a calls", dsm.Q1a, 2, 0)
	approx(t, "DSM 1b calls", dsm.Q1b, 3000, 0.5)
	approx(t, "DSM 1c calls", dsm.Q1c, 2, 0)
	// Queries 2: 2 calls per distinct object (the warm loop amortizes).
	pages := Estimate(DSM, p, w)
	// Pages per call ≈ p/2 = 2 for the paper's 4-page objects, the §5.2
	// observation "about 2 pages are read per I/O call".
	ratio := pages.Q2b / dsm.Q2b
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("DSM pages per call = %.2f, want ~2", ratio)
	}
	// Write calls: batched replace adds ~G calls per loop for 3a.
	approx(t, "DSM 3a - 2a calls", dsm.Q3a-dsm.Q2a, w.Grand, 1e-9)
}

func TestEstimateCallsWriteThroughAnomaly(t *testing.T) {
	p, w := PaperParams(), PaperWorkload()
	ddsm := EstimateCalls(DASDBSDSM, p, w)
	dsm := EstimateCalls(DSM, p, w)
	// The write-through pool pays one call per update operation every
	// loop; the batched replace amortizes across loops (Eq. 8).
	ddsmWrites := ddsm.Q3b - ddsm.Q2b
	dsmWrites := dsm.Q3b - dsm.Q2b
	if ddsmWrites <= dsmWrites {
		t.Errorf("write-through calls %.2f not above batched %.2f", ddsmWrites, dsmWrites)
	}
	approx(t, "DASDBS-DSM 3b write calls", ddsmWrites, w.Grand, 1e-9)
}

func TestEstimateCallsNormalizedEqualsPages(t *testing.T) {
	p, w := PaperParams(), PaperWorkload()
	for _, m := range []Model{NSM, NSMIndex, DASDBSNSM} {
		calls := EstimateCalls(m, p, w)
		pages := Estimate(m, p, w)
		for _, q := range []string{"1b", "1c", "2a", "2b", "3a", "3b"} {
			c, _ := calls.ByQuery(q)
			pg, _ := pages.ByQuery(q)
			if math.Abs(c-pg) > 1e-9 {
				t.Errorf("%s %s: calls %.3f != pages %.3f (one page per call)", m, q, c, pg)
			}
		}
	}
	if !math.IsNaN(EstimateCalls(NSM, p, w).Q1a) {
		t.Error("NSM 1a calls should be NaN")
	}
}

func TestEstimateAllCalls(t *testing.T) {
	rows := EstimateAllCalls(PaperParams(), PaperWorkload())
	if len(rows) != len(AllModels()) {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if v, _ := r.ByQuery("2b"); !(v > 0) && r.Model != NSM {
			t.Errorf("%s 2b calls = %g", r.Model, v)
		}
	}
}

func TestEstimateCostOrderingsEraDependence(t *testing.T) {
	p, w := PaperParams(), PaperWorkload()
	// On a seek-dominated 1990 disk, pure NSM's one-call-per-page value
	// query costs more than DSM's batched scan despite fewer pages.
	nsm90 := EstimateCost(NSM, p, w, 20, 2)
	dsm90 := EstimateCost(DSM, p, w, 20, 2)
	if nsm90.Q1b <= dsm90.Q1b {
		t.Errorf("1990 disk: NSM 1b %.0f <= DSM %.0f", nsm90.Q1b, dsm90.Q1b)
	}
	// On flash the page ordering dominates and NSM's fewer pages win.
	nsmFl := EstimateCost(NSM, p, w, 0.02, 0.01)
	dsmFl := EstimateCost(DSM, p, w, 0.02, 0.01)
	if nsmFl.Q1b >= dsmFl.Q1b {
		t.Errorf("flash: NSM 1b %.2f >= DSM %.2f", nsmFl.Q1b, dsmFl.Q1b)
	}
	// The navigation winner is era-independent.
	for _, dev := range [][2]float64{{20, 2}, {0.02, 0.01}} {
		dnsm := EstimateCost(DASDBSNSM, p, w, dev[0], dev[1])
		dsm := EstimateCost(DSM, p, w, dev[0], dev[1])
		if dnsm.Q2b >= dsm.Q2b {
			t.Errorf("d1=%.2f: DASDBS-NSM 2b %.2f >= DSM %.2f", dev[0], dnsm.Q2b, dsm.Q2b)
		}
	}
}
