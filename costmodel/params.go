package costmodel

// Model names the storage model a set of estimates refers to. The enum is
// deliberately independent of the storage engine so the analytical package
// stays free of engine dependencies.
type Model int

const (
	// DSM is the direct storage model.
	DSM Model = iota
	// DSMPrime is DSM "without wasted disk space" (the primed rows of
	// Table 3, used in §5.4 as the realistic worst-case anchor).
	DSMPrime
	// DASDBSDSM is the direct model with partial page access.
	DASDBSDSM
	// NSM is the normalized model without index support.
	NSM
	// NSMIndex is NSM with a (free, in-memory) index.
	NSMIndex
	// DASDBSNSM is the nested-normalized model with a transformation table.
	DASDBSNSM
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case DSM:
		return "DSM"
	case DSMPrime:
		return "DSM'"
	case DASDBSDSM:
		return "DASDBS-DSM"
	case NSM:
		return "NSM"
	case NSMIndex:
		return "NSM+index"
	case DASDBSNSM:
		return "DASDBS-NSM"
	default:
		return "Model(?)"
	}
}

// AllModels lists the estimator rows in Table 3 order.
func AllModels() []Model {
	return []Model{DSM, DSMPrime, DASDBSDSM, NSM, NSMIndex, DASDBSNSM}
}

// Rel holds the layout constants of one stored relation (one Table 2 row):
// tuples per object, tuples per page (k) for page-sharing relations, pages
// per tuple (p) for large tuples, and total pages (m).
type Rel struct {
	PerObject float64
	K         float64
	P         float64
	M         float64
}

// Params carries every physical constant the estimators need. The split
// mirrors Table 2: one large-tuple relation for the direct models and four
// relations each for the normalized models.
type Params struct {
	// Name labels the parameter set in reports ("paper", "derived").
	Name string
	// SPage is the effective page size in bytes (2012 for DASDBS).
	SPage float64

	// Direct model: every station is one large tuple.
	// DirectP is Equation 2's p (pages per object, including the header
	// page and any allocation waste) — what plain DSM transfers.
	DirectP float64
	// DirectUsefulP is the number of pages actually carrying data (the
	// primed "no wasted space" variant and what DASDBS-DSM transfers for a
	// full object read).
	DirectUsefulP float64
	// DirectNavP is what DASDBS-DSM transfers to navigate (header + the
	// data pages holding root record and platforms; the paper: "we only
	// need to retrieve the header page and a single data page").
	DirectNavP float64
	// DirectRootP is what DASDBS-DSM transfers to read just the root
	// record (header + one data page).
	DirectRootP float64
	// DirectM is the direct relation's total pages (N * DirectP).
	DirectM float64
	// DirectUsefulM is the total pages without waste (N * DirectUsefulP).
	DirectUsefulM float64

	// Normalized flat relations (NSM / NSM+index).
	NSMStation     Rel
	NSMPlatform    Rel
	NSMConnection  Rel
	NSMSightseeing Rel

	// Nested-normalized relations (DASDBS-NSM). Station/Platform/
	// Connection tuples share pages; Sightseeing tuples are large (P pages
	// each, header included).
	DNSMStation     Rel
	DNSMPlatform    Rel
	DNSMConnection  Rel
	DNSMSightseeing Rel
}

// Workload carries the benchmark's statistical constants (§2).
type Workload struct {
	// N is the number of objects in the extension.
	N float64
	// Children is the average number of child references per object
	// ((fanout*prob)^3 = 4.096 by default).
	Children float64
	// Grand is the average number of grand-children per loop (Children²).
	Grand float64
	// Loops is the loop count of queries 2b/3b (300 for N=1500).
	Loops float64
}

// PaperWorkload returns the paper's benchmark constants for the default
// extension.
func PaperWorkload() Workload {
	return Workload{N: 1500, Children: 4.096, Grand: 16.777216, Loops: 300}
}

// WorkloadFor scales the workload to a database of n objects, with the
// Figure 6 convention loops = n/5.
func WorkloadFor(n int) Workload {
	w := PaperWorkload()
	w.N = float64(n)
	w.Loops = float64(n) / 5
	if w.Loops < 1 {
		w.Loops = 1
	}
	return w
}

// ObjectsPerLoop returns the expected objects touched by one navigation
// loop: the root, its children and its grand-children.
func (w Workload) ObjectsPerLoop() float64 { return 1 + w.Children + w.Grand }

// PaperParams returns the layout constants of the paper's Table 2.
//
// Legible cells are taken verbatim: S_page = 2012; DSM_Station S_tuple =
// 6078 → p = 4, m = 6000 (p = 3, m = 4500 without wasted space);
// NSM_Connection k = 11, m = 559; NSM_Sightseeing k = 4, m = 2813. The
// remaining cells are OCR-corrupted in the available text and are
// reconstructed from the same arithmetic (tuple sizes from Figure 1 plus
// DASDBS overheads, m = ceil(tuples/k)); the reconstruction reproduces
// every legible Table 3 value (see tests).
func PaperParams() Params {
	return Params{
		Name:  "paper",
		SPage: 2012,

		DirectP:       4, // ceil(6078/2012)
		DirectUsefulP: 3, // measured: 1 header + 2.02 data pages
		DirectNavP:    2, // header + single data page (§4)
		DirectRootP:   2,
		DirectM:       6000,
		DirectUsefulM: 4500,

		NSMStation:     Rel{PerObject: 1.0, K: 13, M: 116},
		NSMPlatform:    Rel{PerObject: 1.6, K: 11, M: 219}, // reconstructed
		NSMConnection:  Rel{PerObject: 4.1, K: 11, M: 559},
		NSMSightseeing: Rel{PerObject: 7.5, K: 4, M: 2813},

		DNSMStation:     Rel{PerObject: 1, K: 13, M: 116},
		DNSMPlatform:    Rel{PerObject: 1, K: 7, M: 209},  // reconstructed
		DNSMConnection:  Rel{PerObject: 1, K: 3, M: 500},  // m legible ("Connection 500")
		DNSMSightseeing: Rel{PerObject: 1, P: 2, M: 3000}, // reconstructed (header+data)
	}
}

// NSMTotalM sums the flat relations' pages.
func (p Params) NSMTotalM() float64 {
	return p.NSMStation.M + p.NSMPlatform.M + p.NSMConnection.M + p.NSMSightseeing.M
}

// DNSMTotalM sums the nested relations' pages.
func (p Params) DNSMTotalM() float64 {
	return p.DNSMStation.M + p.DNSMPlatform.M + p.DNSMConnection.M + p.DNSMSightseeing.M
}

// DNSMFetchPages is the page cost of assembling one object by address
// under DASDBS-NSM: one page for each small nested tuple plus the
// sightseeing tuple's pages ("the (four) addresses of the corresponding
// tuples", §4; paper value 5.00).
func (p Params) DNSMFetchPages() float64 {
	see := p.DNSMSightseeing.P
	if see == 0 {
		see = 1
	}
	return 3 + see
}
