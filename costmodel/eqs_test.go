package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestPagesPerTuple(t *testing.T) {
	// The paper's Equation 2 on its own numbers: ceil(6078/2012) = 4.
	approx(t, "p(6078)", PagesPerTuple(6078, 2012), 4, 0)
	approx(t, "p(2012)", PagesPerTuple(2012, 2012), 1, 0)
	approx(t, "p(2013)", PagesPerTuple(2013, 2012), 2, 0)
	approx(t, "p(0)", PagesPerTuple(0, 2012), 0, 0)
}

func TestLargeEntire(t *testing.T) {
	// Equation 3 on the paper's query 2a / DSM cell: ~21.9 objects times 4
	// pages ≈ 86.9 (the paper rounds the expected object count).
	got := LargeEntire(PaperWorkload().ObjectsPerLoop(), 4)
	approx(t, "X(21.9, 4)", got, 86.9, 1.0)
}

func TestBernsteinBounds(t *testing.T) {
	approx(t, "Bernstein(1,m)", Bernstein(1, 100), 1, 1e-9)
	if got := Bernstein(1e9, 100); math.Abs(got-100) > 1e-6 {
		t.Errorf("Bernstein(inf,m) = %g, want m", got)
	}
	if Bernstein(0, 100) != 0 || Bernstein(10, 0) != 0 {
		t.Error("Bernstein degenerate inputs")
	}
}

func TestBernsteinMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		t1, t2 := float64(a%1000), float64(b%1000)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return Bernstein(t1, 200) <= Bernstein(t2, 200)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYaoAgreesWithBernstein(t *testing.T) {
	// For large n the two formulas converge; Yao selects t *distinct*
	// tuples (without replacement) while Bernstein models t draws with
	// replacement, so Yao touches at least as many pages.
	n, k := 10000, 10
	m := n / k
	for _, tt := range []int{1, 10, 100, 1000} {
		y := Yao(tt, n, k)
		b := Bernstein(float64(tt), float64(m))
		if math.Abs(y-b)/b > 0.05 {
			t.Errorf("t=%d: Yao %g vs Bernstein %g differ by >5%%", tt, y, b)
		}
		if y < b-1e-9 {
			t.Errorf("t=%d: Yao %g below Bernstein %g (distinct draws must touch at least as many pages)", tt, y, b)
		}
	}
}

func TestYaoEdgeCases(t *testing.T) {
	if got := Yao(5, 5, 2); got != 3 {
		t.Errorf("Yao(all tuples) = %g, want ceil(5/2)=3", got)
	}
	if got := Yao(1, 100, 10); math.Abs(got-1) > 1e-9 {
		t.Errorf("Yao(1 tuple) = %g, want 1", got)
	}
	if Yao(0, 10, 2) != 0 {
		t.Error("Yao(0) != 0")
	}
}

func TestClusterSpanMatchesPaperEquation6(t *testing.T) {
	// The NSM+index query 1a cell of Table 3 decomposes into cluster spans:
	// 1 + span(1.6 platforms, k=11) + span(4.1 connections, k=11) +
	// span(7.5 sightseeings, k=4) = 5.96 — exactly the published value.
	got := 1 + ClusterSpan(1.6, 11) + ClusterSpan(4.1, 11) + ClusterSpan(7.5, 4)
	approx(t, "NSM+index q1a decomposition", got, 5.96, 0.005)
}

func TestClusterSpanBasics(t *testing.T) {
	approx(t, "span(1,k)", ClusterSpan(1, 10), 1, 0)
	approx(t, "span(k+1,k)", ClusterSpan(11, 10), 2, 0)
	approx(t, "span(0.5,k) clamps to one tuple", ClusterSpan(0.5, 10), 1, 0)
	if ClusterSpan(0, 10) != 0 || ClusterSpan(5, 0) != 0 {
		t.Error("degenerate spans")
	}
}

func TestSmallClusterCapsAtM(t *testing.T) {
	approx(t, "capped", SmallCluster(1e6, 50, 10), 50, 0)
	approx(t, "uncapped", SmallCluster(10, 50, 10), 1+9.0/10, 1e-9)
}

func TestClustersBoundaries(t *testing.T) {
	// i=1 degenerates to Equation 6 (up to the union's negligible overlap
	// correction for a single cluster).
	one := Clusters(1, 10, 1000, 10)
	eq6 := SmallCluster(10, 1000, 10)
	approx(t, "Clusters(1)", one, eq6, 0.01)
	// g=1 degenerates to Equation 4.
	approx(t, "Clusters(g=1)", Clusters(50, 1, 200, 10), Bernstein(50, 200), 1e-9)
	// Saturation at m.
	approx(t, "Clusters saturates", Clusters(1e9, 5, 100, 10), 100, 1e-6)
}

func TestClustersMonotoneInClusters(t *testing.T) {
	f := func(a uint8) bool {
		i := float64(a%50) + 1
		return Clusters(i, 4, 500, 11) <= Clusters(i+1, 4, 500, 11)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctMatchesPaperEquation8(t *testing.T) {
	// §4's cache model: drawing 300*21.7 times from 1500 objects leaves
	// ~1480 distinct objects, which yields the 19.7 pages/loop of the DSM
	// query 2b cell.
	d := Distinct(1500, 300*21.73)
	approx(t, "distinct objects", d, 1480, 5)
	approx(t, "DSM q2b", d*4/300, 19.7, 0.15)
	// And the paper's explicit 0.387 root-page writes per loop for query
	// 3b under (DASDBS-)NSM: all 116 root pages are written once.
	dg := Distinct(1500, 300*16.7)
	approx(t, "NSM q3b writes", Bernstein(dg, 116)/300, 0.387, 0.005)
}

func TestDistinctBounds(t *testing.T) {
	if Distinct(100, 0) != 0 {
		t.Error("Distinct with no draws")
	}
	if got := Distinct(100, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("Distinct(100,1) = %g", got)
	}
	if got := Distinct(100, 1e9); math.Abs(got-100) > 1e-6 {
		t.Errorf("Distinct saturation = %g", got)
	}
	f := func(a, b uint16) bool {
		n1, n2 := float64(a%5000), float64(b%5000)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		d1, d2 := Distinct(1500, n1), Distinct(1500, n2)
		return d1 <= d2+1e-9 && d2 <= 1500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsedDataPages(t *testing.T) {
	// One cluster of half a page: about one page touched.
	got := UsedDataPages(1000, 2012, 1, 3)
	if got < 1 || got > 1.5 {
		t.Errorf("UsedDataPages(1000B) = %g", got)
	}
	// Cap at the object's data pages.
	approx(t, "cap", UsedDataPages(1e9, 2012, 5, 3), 3, 0)
	if UsedDataPages(0, 2012, 1, 3) != 0 {
		t.Error("no used bytes must cost nothing")
	}
}

func TestWeightedCost(t *testing.T) {
	approx(t, "eq1", WeightedCost(10, 1, 3, 12), 42, 0)
}

func TestLargePartial(t *testing.T) {
	// t objects, header + one data page each (the paper's query 2 pattern).
	approx(t, "eq5", LargePartial(21.7, 1, 1), 43.4, 1e-9)
	if LargePartial(0, 1, 1) != 0 {
		t.Error("no tuples must cost nothing")
	}
}
