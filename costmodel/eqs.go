// Package costmodel implements the analytical disk-I/O cost model of the
// paper's §3 and §4: Equations 2-8 and the per-model, per-query page-I/O
// estimators that produce Table 3 and the best/worst-case curves of
// Figure 6.
//
// The model is purely arithmetic — it has no dependency on the storage
// engine — and is parameterized by the physical layout constants of
// Table 2 (tuple sizes, tuples per page k, pages per tuple p, relation
// pages m), which can come either from the paper (PaperParams) or from a
// loaded database (the experiments package derives them from the engine's
// size reports).
//
// Two of the paper's equations are reconstructed: the derivations of
// Equation 5 (partial reads of large tuples) and Equation 7 (clusters of
// small tuples) live in a technical report [14] that is not available, and
// the printed forms are corrupted in the source text. The reconstructions
// below are derived from first principles and validated against every
// legible cell of Table 3 (see the package tests).
package costmodel

import "math"

// PagesPerTuple is Equation 2: the number of pages p a large tuple of
// stuple bytes spans, p = ceil(stuple/spage). In DASDBS the set of header
// pages is disjoint from the data pages, so stuple includes the header
// space (which is how the paper arrives at p=4 for the 6078-byte average
// station).
func PagesPerTuple(stuple, spage float64) float64 {
	if stuple <= 0 || spage <= 0 {
		return 0
	}
	return math.Ceil(stuple / spage)
}

// LargeEntire is Equation 3: retrieving t large tuples in their entirety
// by address costs t*p page accesses.
func LargeEntire(t, p float64) float64 { return t * p }

// Bernstein is Equation 4, the expected number of distinct pages touched
// when t tuples are drawn and the tuples are randomly distributed over m
// pages (Bernstein et al., SDD-1): m * (1 - (1 - 1/m)^t).
//
// The closed form treats the t draws as independent, which is the standard
// approximation of Yao's exact hypergeometric formula and is what the
// paper's numbers reproduce.
func Bernstein(t, m float64) float64 {
	if m <= 0 || t <= 0 {
		return 0
	}
	return m * (1 - math.Pow(1-1/m, t))
}

// Yao is the exact counterpart of Equation 4 for integer inputs: the
// expected number of pages touched when t distinct tuples are selected
// uniformly without replacement from n tuples stored k per page on
// m = ceil(n/k) pages (Yao 1977). Provided for validation; the estimators
// use Bernstein like the paper.
func Yao(t, n, k int) float64 {
	if t <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	if t >= n {
		return math.Ceil(float64(n) / float64(k))
	}
	m := (n + k - 1) / k
	// E = m * (1 - C(n-k, t)/C(n, t)); computed in log space for stability.
	frac := 1.0
	for i := 0; i < t; i++ {
		frac *= float64(n-k-i) / float64(n-i)
		if frac <= 0 {
			frac = 0
			break
		}
	}
	return float64(m) * (1 - frac)
}

// ClusterSpan returns the expected number of pages spanned by one cluster
// of g consecutive tuples stored k per page, when the cluster's start
// position is uniform within a page: for integer g this is
// ceil(g/k) + ((g-1) mod k)/k; the continuous generalization used here is
// 1 + (g-1)/k. A cluster never spans more than ceil(g/k)+1 pages.
func ClusterSpan(g, k float64) float64 {
	if g <= 0 || k <= 0 {
		return 0
	}
	if g < 1 {
		g = 1
	}
	return 1 + (g-1)/k
}

// SmallCluster is Equation 6: t tuples stored as one contiguous cluster on
// a relation of m pages with k tuples per page. The expected page count is
// the cluster span, capped at the relation size.
func SmallCluster(t, m, k float64) float64 {
	if m <= 0 {
		return 0
	}
	return math.Min(ClusterSpan(t, k), m)
}

// Clusters is the reconstruction of Equation 7: i clusters of g tuples
// each, randomly located on the m pages of a relation with k tuples per
// page. Each cluster spans ClusterSpan(g,k) pages in expectation; the
// overlap between randomly placed clusters is accounted for with the
// Bernstein union, i.e. the i*span page requests are treated as random
// draws over the m pages.
//
// (The paper's printed recursion is OCR-corrupted; this closed form agrees
// with its boundary behaviour: for i=1 it degenerates to Equation 6, for
// g=1 to Equation 4, and it saturates at m.)
func Clusters(i, g, m, k float64) float64 {
	if m <= 0 || i <= 0 {
		return 0
	}
	span := ClusterSpan(g, k)
	if span >= m {
		return m
	}
	return m * (1 - math.Pow(1-span/m, i))
}

// LargePartial is the reconstruction of Equation 5: retrieving only the
// used parts of t large tuples under DASDBS-DSM. Each access pays the
// header pages plus the expected number of data pages containing used
// bytes; usedPages already aggregates "the percentage of tuple-data that is
// not used, and the clustering of these data within the object" into the
// expected data-page count per object.
func LargePartial(t, headerPages, usedPages float64) float64 {
	if t <= 0 {
		return 0
	}
	return t * (headerPages + usedPages)
}

// UsedDataPages estimates the expected number of data pages that must be
// fetched from a large tuple when usedBytes of its data are needed and the
// used bytes form c contiguous clusters within the dataPages pages of the
// object (the clustering input of Equation 5).
func UsedDataPages(usedBytes, spage float64, c int, dataPages float64) float64 {
	if usedBytes <= 0 || spage <= 0 || c <= 0 || dataPages <= 0 {
		return 0
	}
	perCluster := ClusterSpan(usedBytes/float64(c), spage) // bytes as "tuples of one byte", k=spage
	est := float64(c) * perCluster
	return math.Min(est, dataPages)
}

// Distinct is Equation 8: drawing nnum times with replacement from ntot
// objects, the expected number of objects drawn at least once is
// ntot * (1 - ((ntot-1)/ntot)^nnum). It drives every warm-cache ("b")
// estimate: only the first access of an object is a physical read when the
// cache is large enough.
func Distinct(ntot, nnum float64) float64 {
	if ntot <= 0 || nnum <= 0 {
		return 0
	}
	return ntot * (1 - math.Pow((ntot-1)/ntot, nnum))
}

// WeightedCost is Equation 1: the total device cost combining I/O calls
// and transferred pages with device-specific weights d1 (per-call latency,
// e.g. seek+rotation) and d2 (per-page transfer).
func WeightedCost(d1, d2, calls, pages float64) float64 {
	return d1*calls + d2*pages
}
