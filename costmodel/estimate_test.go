package costmodel

import (
	"math"
	"testing"
)

// TestTable3LegibleCells verifies every cell of the paper's Table 3 that is
// legible in the available text, using the paper's own layout parameters.
// This is the core validation of the reconstructed cost model.
func TestTable3LegibleCells(t *testing.T) {
	p := PaperParams()
	w := PaperWorkload()

	dsm := Estimate(DSM, p, w)
	// "DSM | 4.00 | 6000 | 4.00 | 86.9 | 19.7 | 154 | 39.1"
	approx(t, "DSM q1a", dsm.Q1a, 4.00, 0.005)
	approx(t, "DSM q1b", dsm.Q1b, 6000, 0.5)
	approx(t, "DSM q1c", dsm.Q1c, 4.00, 0.005)
	approx(t, "DSM q2a", dsm.Q2a, 86.9, 1.0)
	approx(t, "DSM q2b", dsm.Q2b, 19.7, 0.2)
	approx(t, "DSM q3a", dsm.Q3a, 154, 1.5)
	approx(t, "DSM q3b", dsm.Q3b, 39.1, 0.4)

	prime := Estimate(DSMPrime, p, w)
	// "DSM' | 3.00 | 4500 | 3.00 | 65.2 | 14.8 | ..."
	approx(t, "DSM' q1a", prime.Q1a, 3.00, 0.005)
	approx(t, "DSM' q1b", prime.Q1b, 4500, 0.5)
	approx(t, "DSM' q2a", prime.Q2a, 65.2, 0.8)
	approx(t, "DSM' q2b", prime.Q2b, 14.8, 0.2)

	ddsm := Estimate(DASDBSDSM, p, w)
	// Full-object queries pay the useful pages (3.00 / 4500 / 3.00);
	// navigation pays header + one data page per object; the 2b cell
	// fragment "9.87" appears in the source.
	approx(t, "DASDBS-DSM q1a", ddsm.Q1a, 3.00, 0.005)
	approx(t, "DASDBS-DSM q1b", ddsm.Q1b, 4500, 0.5)
	approx(t, "DASDBS-DSM q2a", ddsm.Q2a, 43.5, 0.5)
	approx(t, "DASDBS-DSM q2b", ddsm.Q2b, 9.87, 0.12)

	nsmIdx := Estimate(NSMIndex, p, w)
	// "NSM+index | 5.96 | 121 | 2.47 | 23.2 | ..."
	approx(t, "NSM+index q1a", nsmIdx.Q1a, 5.96, 0.01)
	approx(t, "NSM+index q1b", nsmIdx.Q1b, 121, 1.0)
	approx(t, "NSM+index q1c", nsmIdx.Q1c, 2.47, 0.05)
	// q2a within 15%: the cell is partially legible (23.2) and the paper's
	// own clustering assumptions for it are not recoverable.
	if math.Abs(nsmIdx.Q2a-23.2)/23.2 > 0.15 {
		t.Errorf("NSM+index q2a = %g, want 23.2 ±15%%", nsmIdx.Q2a)
	}

	dnsm := Estimate(DASDBSNSM, p, w)
	// "DASDBS-NSM' | 5.00 | 120 | 2.55 | 21.8 | ..."
	approx(t, "DASDBS-NSM q1a", dnsm.Q1a, 5.00, 0.005)
	approx(t, "DASDBS-NSM q1b", dnsm.Q1b, 120, 0.5)
	approx(t, "DASDBS-NSM q1c", dnsm.Q1c, 2.55, 0.01)
	// §5.4: "DASDBS-NSM needs the least disk I/Os (about 2 pages per loop)".
	approx(t, "DASDBS-NSM q2b", dnsm.Q2b, 2.0, 0.35)

	nsm := Estimate(NSM, p, w)
	if !math.IsNaN(nsm.Q1a) {
		t.Errorf("pure NSM q1a = %g, want NaN (not relevant)", nsm.Q1a)
	}
	// Full scans of all four relations.
	approx(t, "NSM q1b", nsm.Q1b, p.NSMTotalM(), 0.5)
	// §5.1: "equation 4 says that all 116 pages are to be written back to
	// disk. That makes 0.387 page writes per loop" — the write part of 3b.
	approx(t, "NSM q3b writes", nsm.Q3b-nsm.Q2b, 0.387, 0.01)
}

// TestTable3Orderings asserts the qualitative ordering claims of the
// paper's discussion (§6) on the analytical side.
func TestTable3Orderings(t *testing.T) {
	p := PaperParams()
	w := PaperWorkload()
	e := map[Model]QueryEstimates{}
	for _, m := range AllModels() {
		e[m] = Estimate(m, p, w)
	}
	// Navigation: normalized beats direct; DASDBS-DSM beats DSM.
	if !(e[DASDBSNSM].Q2b < e[DASDBSDSM].Q2b && e[DASDBSDSM].Q2b < e[DSM].Q2b) {
		t.Errorf("q2b ordering violated: DNSM %g, DDSM %g, DSM %g",
			e[DASDBSNSM].Q2b, e[DASDBSDSM].Q2b, e[DSM].Q2b)
	}
	// Value queries: pure NSM is catastrophic.
	if e[NSM].Q1b < 10*e[NSMIndex].Q1b {
		t.Errorf("pure NSM q1b %g not dramatically worse than indexed %g",
			e[NSM].Q1b, e[NSMIndex].Q1b)
	}
	// The index makes the small query cheap: scan + a handful.
	if e[NSMIndex].Q1b > p.NSMStation.M+10 {
		t.Errorf("NSM+index q1b %g above scan+handful", e[NSMIndex].Q1b)
	}
	// Updates: normalized models update shared root pages, direct models
	// rewrite whole objects.
	if !(e[DASDBSNSM].Q3b < e[DSM].Q3b) {
		t.Error("q3b: DASDBS-NSM not cheaper than DSM")
	}
}

func TestEstimateAllRowsAndByQuery(t *testing.T) {
	rows := EstimateAll(PaperParams(), PaperWorkload())
	if len(rows) != len(AllModels()) {
		t.Fatalf("EstimateAll returned %d rows", len(rows))
	}
	for _, r := range rows {
		for _, q := range []string{"1a", "1b", "1c", "2a", "2b", "3a", "3b"} {
			v, ok := r.ByQuery(q)
			if !ok {
				t.Fatalf("ByQuery(%s) not found", q)
			}
			if r.Model == NSM && q == "1a" {
				if !math.IsNaN(v) {
					t.Error("NSM 1a should be NaN")
				}
				continue
			}
			if v <= 0 || math.IsNaN(v) {
				t.Errorf("%s %s = %g", r.Model, q, v)
			}
		}
	}
	if _, ok := rows[0].ByQuery("9z"); ok {
		t.Error("ByQuery accepted garbage label")
	}
}

func TestModelString(t *testing.T) {
	want := map[Model]string{
		DSM: "DSM", DSMPrime: "DSM'", DASDBSDSM: "DASDBS-DSM",
		NSM: "NSM", NSMIndex: "NSM+index", DASDBSNSM: "DASDBS-NSM",
	}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestScaledParams(t *testing.T) {
	p := PaperParams()
	half := p.Scaled(750, 1500)
	if math.Abs(half.DirectM-3000) > 1 {
		t.Errorf("scaled DirectM = %g", half.DirectM)
	}
	if math.Abs(half.NSMConnection.M-280) > 1 {
		t.Errorf("scaled NSM connection M = %g", half.NSMConnection.M)
	}
	if half.NSMConnection.K != p.NSMConnection.K {
		t.Error("scaling must not change k")
	}
	// Degenerate inputs leave params unchanged.
	same := p.Scaled(0, 1500)
	if same.DirectM != p.DirectM {
		t.Error("Scaled(0) changed params")
	}
}

func TestFigure6Curves(t *testing.T) {
	p := PaperParams()
	// Best case is below worst case everywhere, both grow less than
	// linearly with N, and DASDBS-NSM stays flattest (§5.4).
	for _, n := range []int{100, 300, 700, 1500} {
		for _, m := range []Model{DSM, DASDBSDSM, DASDBSNSM} {
			best := BestCaseQ2b(m, p, n)
			worst := WorstCaseQ2b(m, p, n)
			if best <= 0 || worst <= 0 {
				t.Fatalf("%s n=%d: non-positive curve", m, n)
			}
			if best >= worst {
				t.Errorf("%s n=%d: best %g >= worst %g", m, n, best, worst)
			}
		}
	}
	// The paper's anchors at N=1500: DSM worst ≈ 86.9 (or 65.2 with p=3),
	// DASDBS-NSM best ≈ 2.
	approx(t, "DSM worst@1500", WorstCaseQ2b(DSM, p, 1500), 86.9, 1.0)
	approx(t, "DSM' worst@1500", WorstCaseQ2b(DSMPrime, p, 1500), 65.2, 0.8)
	approx(t, "DNSM best@1500", BestCaseQ2b(DASDBSNSM, p, 1500), 2.0, 0.35)
	// The best-case lines of Figure 6 are flat in N: loops scale with the
	// database (N/5), so the distinct fraction per loop is constant.
	for _, m := range []Model{DSM, DASDBSDSM, DASDBSNSM} {
		small, large := BestCaseQ2b(m, p, 100), BestCaseQ2b(m, p, 1500)
		if math.Abs(small-large)/large > 0.15 {
			t.Errorf("%s best case not flat: %g@100 vs %g@1500", m, small, large)
		}
	}
}

func TestWorkloadHelpers(t *testing.T) {
	w := PaperWorkload()
	approx(t, "objects per loop", w.ObjectsPerLoop(), 21.87, 0.01)
	w2 := WorkloadFor(100)
	if w2.Loops != 20 {
		t.Errorf("WorkloadFor(100).Loops = %g, want 20", w2.Loops)
	}
	if WorkloadFor(2).Loops != 1 {
		t.Error("loops floor at 1")
	}
}

func TestDNSMFetchPages(t *testing.T) {
	p := PaperParams()
	approx(t, "fetch pages", p.DNSMFetchPages(), 5, 0)
	p.DNSMSightseeing.P = 0
	approx(t, "fetch pages fallback", p.DNSMFetchPages(), 4, 0)
}
