package complexobj

import (
	"errors"
	"testing"

	"complexobj/cobench"
)

func smallDB(t *testing.T, kind ModelKind) *DB {
	t.Helper()
	db, err := OpenLoaded(kind, Options{BufferPages: 128}, cobench.DefaultConfig().WithN(80))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestModelNames(t *testing.T) {
	want := map[ModelKind]string{
		DSM: "DSM", DASDBSDSM: "DASDBS-DSM", NSM: "NSM",
		NSMIndex: "NSM+index", DASDBSNSM: "DASDBS-NSM",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
		// Round-trip through both the display name and the short alias.
		got, err := ModelByName(w)
		if err != nil || got != k {
			t.Errorf("ModelByName(%q) = %v, %v", w, got, err)
		}
	}
	for alias, k := range map[string]ModelKind{
		"dsm": DSM, "ddsm": DASDBSDSM, "nsm": NSM, "nsmx": NSMIndex, "dnsm": DASDBSNSM,
	} {
		if got, err := ModelByName(alias); err != nil || got != k {
			t.Errorf("ModelByName(%q) = %v, %v", alias, got, err)
		}
	}
	if _, err := ModelByName("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
	if len(AllModels()) != 5 {
		t.Error("AllModels wrong")
	}
}

func TestOpenLoadFetch(t *testing.T) {
	for _, kind := range AllModels() {
		db := smallDB(t, kind)
		if db.Kind() != kind || db.NumObjects() != 80 {
			t.Fatalf("%s: kind/objects wrong", kind)
		}
		s, err := db.FetchByKey(cobench.KeyOf(10))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if s.Key != cobench.KeyOf(10) {
			t.Fatalf("%s: wrong station", kind)
		}
		if db.Stats().Pages() == 0 {
			t.Errorf("%s: no I/O counted", kind)
		}
	}
}

func TestAddressAccessErrors(t *testing.T) {
	db := smallDB(t, NSM)
	if _, err := db.FetchByAddress(0); !errors.Is(err, ErrNoAddressAccess) {
		t.Errorf("pure NSM FetchByAddress err = %v", err)
	}
	db2 := smallDB(t, DSM)
	if _, err := db2.FetchByAddress(0); err != nil {
		t.Errorf("DSM FetchByAddress: %v", err)
	}
}

func TestEmptyDatabase(t *testing.T) {
	db, err := Open(DSM, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.FetchByKey(1)
	if !IsNotLoaded(err) {
		t.Errorf("empty fetch err = %v", err)
	}
	if _, err := db.Run(cobench.Q1c, cobench.DefaultWorkload()); !IsNotLoaded(err) {
		t.Errorf("empty run err = %v", err)
	}
}

func TestNavigateAndUpdate(t *testing.T) {
	db := smallDB(t, DASDBSNSM)
	root, children, err := db.Navigate(3)
	if err != nil {
		t.Fatal(err)
	}
	if root.Key != cobench.KeyOf(3) {
		t.Error("navigate root mismatch")
	}
	if len(children) > 0 {
		if _, err := db.ReadRoot(int(children[0])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.UpdateRoots([]int32{3}, func(_ int32, r *cobench.RootRecord) {
		r.Name = "renamed"
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	r, err := db.ReadRoot(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "renamed" {
		t.Error("update lost")
	}
}

func TestStatsAccounting(t *testing.T) {
	db := smallDB(t, DSM)
	before := db.Stats()
	if before.Pages() != 0 {
		t.Fatalf("fresh DB has stats: %+v", before)
	}
	if _, err := db.FetchByAddress(0); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.PagesRead == 0 || after.ReadCalls == 0 || after.BufferFixes == 0 {
		t.Errorf("fetch not accounted: %+v", after)
	}
	db.ResetStats()
	if db.Stats().Pages() != 0 {
		t.Error("ResetStats failed")
	}
}

func TestScanAll(t *testing.T) {
	db := smallDB(t, NSMIndex)
	count := 0
	err := db.ScanAll(func(i int, s *cobench.Station) error {
		if s.Key != cobench.KeyOf(i) {
			t.Fatalf("scan order broken at %d", i)
		}
		count++
		return nil
	})
	if err != nil || count != 80 {
		t.Fatalf("scan: %v, %d objects", err, count)
	}
}

func TestSizes(t *testing.T) {
	db := smallDB(t, NSM)
	sizes := db.Sizes()
	if len(sizes) != 4 {
		t.Fatalf("NSM sizes: %d relations", len(sizes))
	}
	total := 0
	for _, r := range sizes {
		total += r.Pages
		if r.Tuples < 0 || r.AvgTupleBytes <= 0 {
			t.Errorf("bad relation %+v", r)
		}
	}
	if total == 0 {
		t.Error("no pages reported")
	}
}

func TestRunBenchmark(t *testing.T) {
	w := cobench.Workload{Loops: 10, Samples: 5, Seed: 1}
	for _, kind := range []ModelKind{DSM, DASDBSNSM} {
		db := smallDB(t, kind)
		results, err := db.RunBenchmark(w)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(results) != 7 {
			t.Fatalf("%s: %d results", kind, len(results))
		}
		for _, r := range results {
			if !r.Supported {
				t.Errorf("%s %s unsupported", kind, r.Query)
			}
			if r.Pages <= 0 || r.Raw.Pages() <= 0 {
				t.Errorf("%s %s: no pages", kind, r.Query)
			}
		}
	}
}

func TestClockReplacementOption(t *testing.T) {
	db, err := OpenLoaded(DSM, Options{BufferPages: 64, ClockReplacement: true},
		cobench.DefaultConfig().WithN(40))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(cobench.Q2b, cobench.Workload{Loops: 20, Samples: 5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleLoadRejected(t *testing.T) {
	db := smallDB(t, DSM)
	stations, _ := cobench.Generate(cobench.DefaultConfig().WithN(5))
	if err := db.Load(stations); err == nil {
		t.Error("double load accepted")
	}
}

func TestCountIndexIOOption(t *testing.T) {
	gen := cobench.DefaultConfig().WithN(120)
	free, err := OpenLoaded(NSMIndex, Options{BufferPages: 128}, gen)
	if err != nil {
		t.Fatal(err)
	}
	counted, err := OpenLoaded(NSMIndex, Options{BufferPages: 128, CountIndexIO: true}, gen)
	if err != nil {
		t.Fatal(err)
	}
	// Same answers either way.
	a, err := free.FetchByAddress(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := counted.FetchByAddress(7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("counted index returns different object")
	}
	// But the counted variant pays more I/O for the same cold fetch.
	free.ColdCache()
	free.ResetStats()
	counted.ColdCache()
	counted.ResetStats()
	free.FetchByAddress(9)
	counted.FetchByAddress(9)
	if counted.Stats().PagesRead <= free.Stats().PagesRead {
		t.Errorf("counted index reads %d pages, free %d; expected more",
			counted.Stats().PagesRead, free.Stats().PagesRead)
	}
}

func TestUpdateObjectFacade(t *testing.T) {
	db := smallDB(t, DASDBSNSM)
	err := db.UpdateObject(5, func(s *cobench.Station) error {
		s.Seeings = append(s.Seeings, cobench.Sightseeing{
			Nr: 99, Description: "facade", Location: "x", History: "y", Remarks: "z",
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	got, err := db.FetchByAddress(5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range got.Seeings {
		if g.Nr == 99 && g.Description == "facade" {
			found = true
		}
	}
	if !found {
		t.Error("structural update not visible")
	}
	if got.NoSeeing != int32(len(got.Seeings)) {
		t.Error("counter not refreshed")
	}
}

// TestBaseFacade exercises the shared-base surface end to end: freeze a
// loaded database, open independent copy-on-write views, check isolation
// between them, and restore a view from a snapshot through both OpenBase
// and the OpenSnapshot cow fast path.
func TestBaseFacade(t *testing.T) {
	db := smallDB(t, DASDBSNSM)
	defer db.Close()
	base, err := db.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if base.Kind() != DASDBSNSM || base.NumPages() == 0 ||
		base.ArenaBytes() != base.NumPages()*2048 {
		t.Fatalf("base geometry: kind=%s pages=%d bytes=%d", base.Kind(), base.NumPages(), base.ArenaBytes())
	}

	writer, err := base.Open(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := base.Open(Options{BufferPages: 128, Backend: "cow"})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if writer.NumObjects() != 80 || reader.NumObjects() != 80 {
		t.Fatalf("views lost objects: %d/%d", writer.NumObjects(), reader.NumObjects())
	}

	key := cobench.KeyOf(7)
	if err := writer.UpdateRoots([]int32{7}, func(i int32, r *cobench.RootRecord) {
		r.Name = "written through view"
	}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := writer.FetchByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "written through view" {
		t.Error("writer view does not observe its own update")
	}
	other, err := reader.FetchByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if other.Name == "written through view" {
		t.Error("sibling view observes writer's update")
	}

	// File backends cannot be views of a base.
	if _, err := base.Open(Options{Backend: "file"}); err == nil {
		t.Error("file backend accepted for a base view")
	}

	// Snapshot round trip through both cow restore paths.
	path := t.TempDir() + "/facade.codb"
	gen := cobench.DefaultConfig().WithN(80)
	if err := WriteSnapshot(path, gen, db); err != nil {
		t.Fatal(err)
	}
	fromBase, err := OpenBase(path, DASDBSNSM)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := fromBase.Open(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := OpenSnapshot(path, DASDBSNSM, Options{BufferPages: 128, Backend: "cow"})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	for name, v := range map[string]*DB{"OpenBase": v1, "OpenSnapshot-cow": v2} {
		s, err := v.FetchByKey(key)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Key != key {
			t.Errorf("%s: wrong station restored", name)
		}
	}
}
