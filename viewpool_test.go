package complexobj

import (
	"reflect"
	"sync"
	"testing"

	"complexobj/cobench"
)

// sameMeasurement compares two results as measurements: every field but
// Elapsed, which is wall-clock observability (never a paper counter) and
// legitimately differs between runs.
func sameMeasurement(a, b QueryResult) bool {
	a.Elapsed, b.Elapsed = 0, 0
	return reflect.DeepEqual(a, b)
}

// poolBaseline builds a frozen base plus the per-query batch results the
// served path must reproduce.
func poolBaseline(t *testing.T) (*Base, map[cobench.Query]QueryResult, cobench.Workload) {
	t.Helper()
	gen := cobench.DefaultConfig().WithN(60)
	w := cobench.Workload{Loops: 20, Samples: 6, Seed: 1993}
	db, err := OpenLoaded(DASDBSNSM, Options{BufferPages: 256}, gen)
	if err != nil {
		t.Fatal(err)
	}
	base, err := db.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { base.Close() })
	want := make(map[cobench.Query]QueryResult)
	for _, q := range cobench.AllQueries() {
		res, err := db.Run(q, w)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return base, want, w
}

// TestViewPoolReuse pins the recycling contract at the facade: a pool of
// 2 views serves many sequential requests — including mutating ones —
// with bit-identical results to the batch run, never copies the base, and
// hands every request a view with a clean overlay and zeroed counters.
func TestViewPoolReuse(t *testing.T) {
	base, want, w := poolBaseline(t)
	arena := base.ArenaBytes()
	pool, err := NewViewPool(base, Options{BufferPages: 256}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	for round := 0; round < 3; round++ {
		for _, q := range cobench.AllQueries() {
			v, err := pool.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			if ms := v.MemStats(); ms.OverlayPages != 0 {
				t.Fatalf("round %d %s: acquired view has %d overlay pages", round, q, ms.OverlayPages)
			}
			if s := v.Stats(); s != (Stats{}) {
				t.Fatalf("round %d %s: acquired view has counters %+v", round, q, s)
			}
			res, err := v.Run(q, w)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMeasurement(res, want[q]) {
				t.Errorf("round %d: pooled %s = %+v, want %+v", round, q, res, want[q])
			}
			if err := v.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	st := pool.Stats()
	if st.Created > 2 {
		t.Errorf("pool created %d views for sequential requests, want <= 2 (no base copies)", st.Created)
	}
	if st.Reused < 18 {
		t.Errorf("pool reused views %d times, want >= 18", st.Reused)
	}
	if st.Rebuilt == 0 {
		t.Error("update queries never triggered a metadata rebuild")
	}
	if st.Destroyed != 0 {
		t.Errorf("%d views destroyed (recycle failures)", st.Destroyed)
	}
	if base.ArenaBytes() != arena {
		t.Errorf("base arena changed size: %d -> %d", arena, base.ArenaBytes())
	}
}

// TestViewPoolConcurrent runs many concurrent clients over a small pool
// (race-checked in CI): every request's private counters must equal the
// serial batch result, and the pool must bound the views it builds.
func TestViewPoolConcurrent(t *testing.T) {
	base, want, w := poolBaseline(t)
	const maxViews, clients = 3, 8
	pool, err := NewViewPool(base, Options{BufferPages: 256}, maxViews)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			queries := cobench.AllQueries()
			for i := range queries {
				q := queries[(i+c)%len(queries)] // stagger the order per client
				v, err := pool.Acquire()
				if err != nil {
					errs <- err
					return
				}
				res, err := v.Run(q, w)
				cerr := v.Close()
				if err != nil {
					errs <- err
					return
				}
				if cerr != nil {
					errs <- cerr
					return
				}
				if !sameMeasurement(res, want[q]) {
					t.Errorf("client %d: concurrent %s diverged from serial batch run", c, q)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Created > maxViews {
		t.Errorf("pool created %d views, bound is %d", st.Created, maxViews)
	}
}

// TestViewPoolClose pins shutdown: Acquire fails after Close, and close
// is idempotent.
func TestViewPoolClose(t *testing.T) {
	base, _, _ := poolBaseline(t)
	pool, err := NewViewPool(base, Options{BufferPages: 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	// A double Close must fail instead of double-releasing the view into
	// the pool (which would hand two requests the same engine).
	if err := v.Close(); err == nil {
		t.Error("double Close of a pooled view succeeded")
	}
	// The engine is still recycled to the next lease (a fresh handle, so
	// stale handles cannot reach it), and a late duplicate Close of the
	// old handle stays an error while the new lease is out.
	v2, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Reused != 1 || st.Created != 1 {
		t.Errorf("pool stats after re-acquire: %+v, want 1 created / 1 reused", st)
	}
	if err := v.Close(); err == nil {
		t.Error("stale handle Close succeeded while its engine serves a new lease")
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Acquire(); err != ErrPoolClosed {
		t.Errorf("Acquire after Close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestStandaloneView covers Base.NewView without a pool: Close destroys
// the view and the base survives.
func TestStandaloneView(t *testing.T) {
	base, want, w := poolBaseline(t)
	v, err := base.NewView(Options{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != DASDBSNSM || v.NumObjects() != 60 {
		t.Fatalf("view identity: kind %s, %d objects", v.Kind(), v.NumObjects())
	}
	res, err := v.Run(cobench.Q2b, w)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMeasurement(res, want[cobench.Q2b]) {
		t.Error("standalone view diverged from batch run")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	// The base stays usable for further views.
	v2, err := base.NewView(Options{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	v2.Close()
}
