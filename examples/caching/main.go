// Caching: reproduce the paper's Figure 6 story interactively — sweep the
// database size past the buffer capacity and watch the direct storage
// models fall off the analytical best case toward the worst case while
// DASDBS-NSM stays flat.
package main

import (
	"fmt"
	"log"
	"strings"

	"complexobj"
	"complexobj/cobench"
	"complexobj/costmodel"
)

func main() {
	const bufferPages = 300 // deliberately small so the overflow shows early
	sizes := []int{50, 100, 200, 400, 800}

	fmt.Printf("query 2b pages/loop with a %d-page cache (loops = N/5):\n\n", bufferPages)
	fmt.Printf("%6s", "N")
	models := []complexobj.ModelKind{complexobj.DSM, complexobj.DASDBSDSM, complexobj.DASDBSNSM}
	for _, m := range models {
		fmt.Printf(" %12s", m)
	}
	fmt.Println()

	results := map[complexobj.ModelKind][]float64{}
	for _, n := range sizes {
		fmt.Printf("%6d", n)
		for _, kind := range models {
			gen := cobench.DefaultConfig().WithN(n)
			db, err := complexobj.OpenLoaded(kind, complexobj.Options{BufferPages: bufferPages}, gen)
			if err != nil {
				log.Fatal(err)
			}
			res, err := db.Run(cobench.Q2b, cobench.Workload{Loops: cobench.LoopsFor(n), Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			results[kind] = append(results[kind], res.Pages)
			fmt.Printf(" %12.2f", res.Pages)
		}
		fmt.Println()
	}

	// Analytical context: best and worst case at the largest size.
	p := costmodel.PaperParams()
	fmt.Println("\nanalytical anchors at N=1500 (paper layout constants):")
	for _, m := range []costmodel.Model{costmodel.DSM, costmodel.DASDBSDSM, costmodel.DASDBSNSM} {
		est := costmodel.Estimate(m, p, costmodel.PaperWorkload())
		fmt.Printf("  %-12s best case %6.2f   worst case %6.2f pages/loop\n", m, est.Q2b, est.Q2a)
	}

	// A crude trend chart for the most cache-sensitive model.
	fmt.Println("\nDSM degradation as the database outgrows the cache:")
	max := 0.0
	for _, v := range results[complexobj.DSM] {
		if v > max {
			max = v
		}
	}
	for i, n := range sizes {
		v := results[complexobj.DSM][i]
		bar := strings.Repeat("#", int(v/max*40))
		fmt.Printf("%6d | %-40s %.1f\n", n, bar, v)
	}
}
