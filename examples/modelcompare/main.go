// Modelcompare: run the complete seven-query benchmark of the paper's §2.2
// across all five storage models and print a Table-4-style comparison —
// the headline experiment of the reproduction, at a reduced scale that
// runs in well under a second.
package main

import (
	"fmt"
	"log"

	"complexobj"
	"complexobj/cobench"
	"complexobj/report"
)

func main() {
	gen := cobench.DefaultConfig().WithN(500)
	w := cobench.Workload{Loops: 100, Samples: 20, Seed: 42}

	pages := &report.Table{
		Title:  "physical page I/Os per object (1a-1c) / per loop (2a-3b)",
		Header: []string{"MODEL", "1a", "1b", "1c", "2a", "2b", "3a", "3b"},
	}
	writes := &report.Table{
		Title:  "page writes per loop (update queries)",
		Header: []string{"MODEL", "3a", "3b"},
	}
	for _, kind := range complexobj.AllModels() {
		db, err := complexobj.OpenLoaded(kind, complexobj.Options{BufferPages: 400}, gen)
		if err != nil {
			log.Fatal(err)
		}
		results, err := db.RunBenchmark(w)
		if err != nil {
			log.Fatal(err)
		}
		row := []string{kind.String()}
		wrow := []string{kind.String()}
		for _, r := range results {
			if !r.Supported {
				row = append(row, "-")
				continue
			}
			row = append(row, report.Num(r.Pages))
			if r.Query == cobench.Q3a || r.Query == cobench.Q3b {
				wrow = append(wrow, report.Num(r.PagesWritten))
			}
		}
		pages.AddRow(row...)
		writes.AddRow(wrow...)
	}
	fmt.Println(pages.Text())
	fmt.Println(writes.Text())
	fmt.Println("reading guide (paper §6): DASDBS-NSM wins navigation; pure NSM loses value")
	fmt.Println("queries (full scans); DASDBS-DSM beats DSM on reads but pays a write-through")
	fmt.Println("page pool per updated tuple on query 3.")
}
