// Quickstart: open a database under the direct storage model, load a small
// benchmark extension, fetch and navigate objects, update a root record,
// and inspect the I/O statistics the library counts.
package main

import (
	"fmt"
	"log"

	"complexobj"
	"complexobj/cobench"
)

func main() {
	// A small railway database: 100 stations, the paper's distribution
	// parameters, deterministic seed.
	gen := cobench.DefaultConfig().WithN(100)
	db, err := complexobj.OpenLoaded(complexobj.DSM, complexobj.Options{BufferPages: 256}, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d stations under %s\n\n", db.NumObjects(), db.Kind())

	// Fetch one complex object by its address (the paper's query 1a).
	station, err := db.FetchByAddress(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("station %d: %q with %d platforms, %d sightseeings\n",
		station.Key, station.Name, station.NoPlatform, station.NoSeeing)

	// Navigate its connections (query 2's inner step): only the needed
	// attributes are read.
	root, children, err := db.Navigate(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("navigating %q -> %d children\n", root.Name, len(children))
	for _, child := range children {
		r, err := db.ReadRoot(int(child))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  connects to %q\n", r.Name)
	}

	// Update a root record (query 3 style) and persist it.
	err = db.UpdateRoots([]int32{7}, func(_ int32, r *cobench.RootRecord) {
		r.Name = "Renamed Centraal"
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// The statistics are the paper's currency: pages, I/O calls, fixes.
	s := db.Stats()
	fmt.Printf("\nI/O so far: %d pages read, %d written, %d calls, %d buffer fixes (%d hits)\n",
		s.PagesRead, s.PagesWritten, s.Calls(), s.BufferFixes, s.BufferHits)

	// Run a full benchmark query with proper normalization.
	res, err := db.Run(cobench.Q2b, cobench.Workload{Loops: 20, Samples: 10, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 2b: %.2f pages per navigation loop\n", res.Pages)
}
