// nf2demo: the complex object model beyond the railway benchmark. The nf2
// package is generic — this example models a CAD-style assembly hierarchy
// (the other application domain the paper's introduction motivates),
// encodes it to the same binary format the storage engine uses, and shows
// partial decoding: reading one attribute without materializing the rest.
package main

import (
	"fmt"
	"log"

	"complexobj/nf2"
)

func main() {
	// Schema: an assembly of parts, each with nested fasteners — a
	// three-level NF² hierarchy with a LINK to a supplier object.
	fastener := nf2.MustTupleType("Fastener",
		nf2.Attr{Name: "Kind", Type: nf2.StringType(16)},
		nf2.Attr{Name: "TorqueNm", Type: nf2.IntType()},
	)
	part := nf2.MustTupleType("Part",
		nf2.Attr{Name: "PartNo", Type: nf2.IntType()},
		nf2.Attr{Name: "Name", Type: nf2.StringType(40)},
		nf2.Attr{Name: "Supplier", Type: nf2.LinkType()},
		nf2.Attr{Name: "Fasteners", Type: nf2.RelType(fastener)},
	)
	assembly := nf2.MustTupleType("Assembly",
		nf2.Attr{Name: "Id", Type: nf2.IntType()},
		nf2.Attr{Name: "Title", Type: nf2.StringType(60)},
		nf2.Attr{Name: "Parts", Type: nf2.RelType(part)},
	)
	fmt.Println("schema:", assembly)

	gearbox := nf2.NewTuple(
		nf2.IntValue(4711),
		nf2.StringValue("gearbox, 6-speed"),
		nf2.RelValue([]nf2.Tuple{
			nf2.NewTuple(nf2.IntValue(1), nf2.StringValue("housing"), nf2.LinkValue(12),
				nf2.RelValue([]nf2.Tuple{
					nf2.NewTuple(nf2.StringValue("M8 bolt"), nf2.IntValue(25)),
					nf2.NewTuple(nf2.StringValue("M8 bolt"), nf2.IntValue(25)),
				})),
			nf2.NewTuple(nf2.IntValue(2), nf2.StringValue("input shaft"), nf2.LinkValue(7),
				nf2.RelValue([]nf2.Tuple{
					nf2.NewTuple(nf2.StringValue("circlip"), nf2.IntValue(0)),
				})),
		}),
	)
	if err := assembly.Validate(gearbox); err != nil {
		log.Fatal(err)
	}

	// Binary encoding: the exact bytes the storage models would place on
	// disk pages.
	buf, err := assembly.Encode(gearbox)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded assembly: %d bytes (computed %d)\n",
		len(buf), assembly.EncodedSize(gearbox))

	// Partial decoding — the mechanism behind DASDBS-DSM's selective page
	// access: project the title without touching the parts.
	title, err := assembly.DecodeAttr(buf, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected title only: %q\n", title.Str())

	// Full decoding round-trips.
	back, err := assembly.Decode(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round trip equal:", assembly.Equal(gearbox, back))

	// Navigate the LINK attributes (supplier references).
	parts, err := assembly.DecodeAttr(buf, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range parts.Tuples() {
		fmt.Printf("part %d (%s) -> supplier object %d, %d fasteners\n",
			p.Vals[0].Int(), p.Vals[1].Str(), p.Vals[2].Int(), len(p.Vals[3].Tuples()))
	}
}
