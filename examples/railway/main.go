// Railway: a realistic information-system scenario on top of the public
// API — route search over the connection graph ("which stations can I
// reach within two changes?") — and a comparison of what that workload
// costs under each storage model.
//
// This is the workload class the paper's introduction motivates: CAD,
// GIS and similar systems navigate object references and need "efficient
// retrieval and manipulation of the complex objects as a whole and of
// parts thereof".
package main

import (
	"fmt"
	"log"

	"complexobj"
	"complexobj/cobench"
)

func main() {
	gen := cobench.DefaultConfig().WithN(400)

	// Build the same railway network under every storage model.
	fmt.Println("reachability within 2 changes, measured under each storage model:")
	fmt.Printf("%-12s %8s %10s %10s %10s\n", "MODEL", "reached", "pagesRead", "I/O calls", "fixes")
	for _, kind := range complexobj.AllModels() {
		db, err := complexobj.OpenLoaded(kind, complexobj.Options{BufferPages: 512}, gen)
		if err != nil {
			log.Fatal(err)
		}
		reached, err := reachable(db, 0, 2)
		if err != nil {
			log.Fatal(err)
		}
		s := db.Stats()
		fmt.Printf("%-12s %8d %10d %10d %10d\n",
			kind, len(reached), s.PagesRead, s.Calls(), s.BufferFixes)
	}

	// Show an actual route expansion on the winner.
	db, err := complexobj.OpenLoaded(complexobj.DASDBSNSM, complexobj.Options{}, gen)
	if err != nil {
		log.Fatal(err)
	}
	root, children, err := db.Navigate(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndepartures from %q:\n", root.Name)
	for _, c := range children {
		r, err := db.ReadRoot(int(c))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> %s\n", r.Name)
	}
}

// reachable runs a breadth-first expansion over the connection graph up to
// the given depth, using only the navigation API (root records + child
// references; sightseeing payloads are never needed — exactly the access
// pattern where the storage models differ).
func reachable(db *complexobj.DB, start, depth int) (map[int32]bool, error) {
	seen := map[int32]bool{int32(start): true}
	frontier := []int32{int32(start)}
	for d := 0; d < depth; d++ {
		var next []int32
		for _, idx := range frontier {
			_, children, err := db.Navigate(int(idx))
			if err != nil {
				return nil, err
			}
			for _, c := range children {
				if !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	return seen, nil
}
